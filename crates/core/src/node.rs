//! The AutoMon node algorithm (paper Algorithm 1, node side).
//!
//! A node keeps its raw local vector `x`, the slack `s` assigned by the
//! coordinator, and the current [`SafeZone`]. On every data update it
//! checks the slack-adjusted vector `x + s` against the constraints and
//! reports a violation at most once per resolution cycle; while a report
//! is outstanding further updates stay silent until new constraints or a
//! slack rebalance arrive.

use std::sync::Arc;

use crate::messages::{CoordinatorMessage, NodeId, NodeMessage};
use crate::safezone::{SafeZone, ViolationKind};
use crate::MonitoredFunction;
use automon_linalg::vector;

/// One monitoring node.
pub struct Node {
    id: NodeId,
    f: Arc<dyn MonitoredFunction>,
    x: Option<Vec<f64>>,
    slack: Vec<f64>,
    zone: Option<SafeZone>,
    /// A violation has been reported and not yet resolved.
    pending: bool,
}

impl Node {
    /// Create node `id` monitoring `f`.
    pub fn new(id: NodeId, f: Arc<dyn MonitoredFunction>) -> Self {
        let d = f.dim();
        Self {
            id,
            f,
            x: None,
            slack: vec![0.0; d],
            zone: None,
            pending: false,
        }
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The installed safe zone, if any.
    pub fn zone(&self) -> Option<&SafeZone> {
        self.zone.as_ref()
    }

    /// The current approximation `f(x0)` (paper §3.8,
    /// `node.current_value()`), available once constraints arrived.
    pub fn current_value(&self) -> Option<f64> {
        self.zone.as_ref().map(|z| z.f0)
    }

    /// The raw local vector last supplied.
    pub fn local_vector(&self) -> Option<&[f64]> {
        self.x.as_deref()
    }

    /// The current slack vector.
    pub fn slack(&self) -> &[f64] {
        &self.slack
    }

    /// `true` while a violation report awaits resolution.
    pub fn is_pending(&self) -> bool {
        self.pending
    }

    /// Install a new local vector (paper `node.update_data(x)`).
    ///
    /// Returns the message to forward to the coordinator, if any.
    ///
    /// # Panics
    /// Panics if `x` has the wrong dimension.
    pub fn update_data(&mut self, x: Vec<f64>) -> Option<NodeMessage> {
        assert_eq!(x.len(), self.f.dim(), "update_data: wrong dimension");
        self.x = Some(x);
        self.check()
    }

    /// Re-check the current vector against the constraints.
    fn check(&mut self) -> Option<NodeMessage> {
        if self.pending {
            return None;
        }
        let x = self.x.as_ref()?;
        let Some(zone) = &self.zone else {
            // First contact: register with the coordinator.
            self.pending = true;
            return Some(NodeMessage::Violation {
                node: self.id,
                kind: ViolationKind::Uninitialized,
                local_vector: x.clone(),
            });
        };
        let adjusted = vector::add(x, &self.slack);
        let kind = zone.check(self.f.as_ref(), &adjusted)?;
        self.pending = true;
        Some(NodeMessage::Violation {
            node: self.id,
            kind,
            local_vector: x.clone(),
        })
    }

    /// Process a coordinator message (paper `node.message_received`).
    ///
    /// Returns the reply to send back, if any.
    pub fn handle(&mut self, msg: CoordinatorMessage) -> Option<NodeMessage> {
        match msg {
            CoordinatorMessage::RequestLocalVector => {
                let vector = self
                    .x
                    .clone()
                    .expect("coordinator requested a vector before any data update");
                Some(NodeMessage::LocalVector {
                    node: self.id,
                    vector,
                })
            }
            CoordinatorMessage::NewConstraints { zone, slack } => {
                assert_eq!(slack.len(), self.f.dim(), "slack dimension mismatch");
                self.zone = Some(zone);
                self.slack = slack;
                self.pending = false;
                None
            }
            CoordinatorMessage::NewConstraintsCached { update, slack } => {
                assert_eq!(slack.len(), self.f.dim(), "slack dimension mismatch");
                let curvature = self
                    .zone
                    .as_ref()
                    .map(|z| z.curvature.clone())
                    .expect("cached constraints before any full constraints");
                self.zone = Some(SafeZone {
                    x0: update.x0,
                    f0: update.f0,
                    grad0: update.grad0,
                    l: update.l,
                    u: update.u,
                    dc: update.dc,
                    curvature,
                    neighborhood: update.neighborhood,
                });
                self.slack = slack;
                self.pending = false;
                None
            }
            CoordinatorMessage::SlackUpdate { slack } => {
                assert_eq!(slack.len(), self.f.dim(), "slack dimension mismatch");
                self.slack = slack;
                self.pending = false;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::safezone::{Curvature, DcKind};
    use automon_autodiff::{AutoDiffFn, Scalar, ScalarFn};

    struct Identity1;
    impl ScalarFn for Identity1 {
        fn dim(&self) -> usize {
            1
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            x[0]
        }
    }

    fn f() -> Arc<dyn MonitoredFunction> {
        Arc::new(AutoDiffFn::new(Identity1))
    }

    fn zone() -> SafeZone {
        // f(x) = x, x0 = 0, ε = 1: safe zone is simply |x| ≤ 1.
        SafeZone {
            x0: vec![0.0],
            f0: 0.0,
            grad0: vec![1.0],
            l: -1.0,
            u: 1.0,
            dc: DcKind::ConvexDiff,
            curvature: Curvature::Scalar(0.0),
            neighborhood: None,
        }
    }

    #[test]
    fn first_update_registers() {
        let mut n = Node::new(0, f());
        let m = n.update_data(vec![0.5]).expect("registration message");
        assert!(matches!(
            m,
            NodeMessage::Violation {
                kind: ViolationKind::Uninitialized,
                ..
            }
        ));
        // Second update while pending stays silent.
        assert!(n.update_data(vec![0.6]).is_none());
    }

    #[test]
    fn monitors_quietly_inside_zone() {
        let mut n = Node::new(1, f());
        let _ = n.update_data(vec![0.0]);
        n.handle(CoordinatorMessage::NewConstraints {
            zone: zone(),
            slack: vec![0.0],
        });
        assert!(!n.is_pending());
        assert!(n.update_data(vec![0.3]).is_none());
        assert!(n.update_data(vec![-0.9]).is_none());
        assert_eq!(n.current_value(), Some(0.0));
    }

    #[test]
    fn reports_violation_once() {
        let mut n = Node::new(2, f());
        let _ = n.update_data(vec![0.0]);
        n.handle(CoordinatorMessage::NewConstraints {
            zone: zone(),
            slack: vec![0.0],
        });
        let m = n.update_data(vec![1.5]).expect("violation");
        match m {
            NodeMessage::Violation {
                node,
                kind,
                local_vector,
            } => {
                assert_eq!(node, 2);
                assert_eq!(kind, ViolationKind::SafeZone);
                assert_eq!(local_vector, vec![1.5]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Suppressed while pending.
        assert!(n.update_data(vec![2.0]).is_none());
        // Resolution re-arms the check.
        n.handle(CoordinatorMessage::SlackUpdate { slack: vec![-1.5] });
        assert!(!n.is_pending());
        // 2.0 + (-1.5) = 0.5 is inside — silent.
        assert!(n.update_data(vec![2.0]).is_none());
        // 3.0 - 1.5 = 1.5 violates again.
        assert!(n.update_data(vec![3.0]).is_some());
    }

    #[test]
    fn slack_shifts_the_checked_point() {
        let mut n = Node::new(0, f());
        let _ = n.update_data(vec![0.0]);
        n.handle(CoordinatorMessage::NewConstraints {
            zone: zone(),
            slack: vec![0.9],
        });
        // 0.3 + 0.9 = 1.2 > 1 → violation even though raw x is inside.
        assert!(n.update_data(vec![0.3]).is_some());
    }

    #[test]
    fn replies_with_local_vector() {
        let mut n = Node::new(4, f());
        let _ = n.update_data(vec![0.7]);
        let m = n.handle(CoordinatorMessage::RequestLocalVector).unwrap();
        assert_eq!(
            m,
            NodeMessage::LocalVector {
                node: 4,
                vector: vec![0.7]
            }
        );
    }
}
