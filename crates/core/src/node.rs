//! The AutoMon node algorithm (paper Algorithm 1, node side).
//!
//! A node keeps its raw local vector `x`, the slack `s` assigned by the
//! coordinator, and the current [`SafeZone`]. On every data update it
//! checks the slack-adjusted vector `x + s` against the constraints and
//! reports a violation at most once per resolution cycle; while a report
//! is outstanding further updates stay silent until new constraints or a
//! slack rebalance arrive.

use std::sync::Arc;

use crate::messages::{CoordinatorMessage, Epoch, NodeId, NodeMessage};
use crate::safezone::{SafeZone, ViolationKind};
use crate::MonitoredFunction;
use automon_linalg::vector;
use automon_obs::{Counter, Telemetry};

/// One monitoring node.
pub struct Node {
    id: NodeId,
    f: Arc<dyn MonitoredFunction>,
    x: Option<Vec<f64>>,
    slack: Vec<f64>,
    zone: Option<SafeZone>,
    /// A violation has been reported and not yet resolved.
    pending: bool,
    /// The epoch of the constraints currently held (0 before any).
    epoch: Epoch,
    /// Kind of the outstanding violation, kept for retransmission over
    /// lossy transports.
    pending_kind: Option<ViolationKind>,
    /// Constraint checks performed (shared across nodes; no-op until
    /// `set_telemetry`).
    tel_checks: Counter,
    /// Reports sent to the coordinator (shared across nodes).
    tel_reports: Counter,
}

impl Node {
    /// Create node `id` monitoring `f`.
    pub fn new(id: NodeId, f: Arc<dyn MonitoredFunction>) -> Self {
        let d = f.dim();
        Self {
            id,
            f,
            x: None,
            slack: vec![0.0; d],
            zone: None,
            pending: false,
            epoch: 0,
            pending_kind: None,
            tel_checks: Counter::disabled(),
            tel_reports: Counter::disabled(),
        }
    }

    /// Install shared observability counters.
    ///
    /// Node handlers may run on parallel worker threads (the chaos
    /// fabric fans deliveries out), so nodes touch only commutative
    /// counters and never emit trace events — see the determinism
    /// contract in [`automon_obs::trace`]. Every node registers the same
    /// metric names, so the registry hands them the same cells and the
    /// counters aggregate across the fleet.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel_checks = tel.counter(
            "automon_node_checks_total",
            "Constraint checks performed across all nodes",
        );
        self.tel_reports = tel.counter(
            "automon_node_reports_total",
            "Violation/registration reports sent across all nodes",
        );
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The installed safe zone, if any.
    pub fn zone(&self) -> Option<&SafeZone> {
        self.zone.as_ref()
    }

    /// The current approximation `f(x0)` (paper §3.8,
    /// `node.current_value()`), available once constraints arrived.
    pub fn current_value(&self) -> Option<f64> {
        self.zone.as_ref().map(|z| z.f0)
    }

    /// The raw local vector last supplied.
    pub fn local_vector(&self) -> Option<&[f64]> {
        self.x.as_deref()
    }

    /// The current slack vector.
    pub fn slack(&self) -> &[f64] {
        &self.slack
    }

    /// `true` while a violation report awaits resolution.
    pub fn is_pending(&self) -> bool {
        self.pending
    }

    /// The constraint epoch this node currently holds.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Re-issue the outstanding report with the node's current vector —
    /// what a lossy transport sends after a retransmit timeout. `None`
    /// when nothing is outstanding (or no data exists yet).
    pub fn retransmit_report(&self) -> Option<NodeMessage> {
        if !self.pending {
            return None;
        }
        let x = self.x.as_ref()?;
        Some(NodeMessage::Violation {
            node: self.id,
            kind: self.pending_kind.unwrap_or(ViolationKind::Uninitialized),
            local_vector: x.clone(),
            epoch: self.epoch,
        })
    }

    /// Install a new local vector (paper `node.update_data(x)`).
    ///
    /// Returns the message to forward to the coordinator, if any.
    ///
    /// # Panics
    /// Panics if `x` has the wrong dimension.
    pub fn update_data(&mut self, x: Vec<f64>) -> Option<NodeMessage> {
        assert_eq!(x.len(), self.f.dim(), "update_data: wrong dimension");
        self.x = Some(x);
        self.check()
    }

    /// Re-check the current vector against the constraints.
    fn check(&mut self) -> Option<NodeMessage> {
        if self.pending {
            return None;
        }
        let x = self.x.as_ref()?;
        let Some(zone) = &self.zone else {
            // First contact: register with the coordinator.
            self.pending = true;
            self.pending_kind = Some(ViolationKind::Uninitialized);
            self.tel_reports.inc();
            return Some(NodeMessage::Violation {
                node: self.id,
                kind: ViolationKind::Uninitialized,
                local_vector: x.clone(),
                epoch: self.epoch,
            });
        };
        self.tel_checks.inc();
        let adjusted = vector::add(x, &self.slack);
        let kind = zone.check(self.f.as_ref(), &adjusted)?;
        self.pending = true;
        self.pending_kind = Some(kind);
        self.tel_reports.inc();
        Some(NodeMessage::Violation {
            node: self.id,
            kind,
            local_vector: x.clone(),
            epoch: self.epoch,
        })
    }

    /// A fresh registration report — what a node that lost its protocol
    /// state (e.g. a restarted process handed a cached-constraints frame
    /// it cannot apply) sends to ask the coordinator for a full resync.
    fn reregister(&mut self) -> Option<NodeMessage> {
        let x = self.x.as_ref()?;
        self.pending = true;
        self.pending_kind = Some(ViolationKind::Uninitialized);
        self.tel_reports.inc();
        Some(NodeMessage::Violation {
            node: self.id,
            kind: ViolationKind::Uninitialized,
            local_vector: x.clone(),
            epoch: self.epoch,
        })
    }

    /// Process a coordinator message (paper `node.message_received`).
    ///
    /// Returns the reply to send back, if any. Frames stamped with an
    /// epoch older than the constraints this node already holds are
    /// discarded: over a lossy/reordering transport a delayed
    /// constraint install from a superseded sync must not clobber the
    /// current one.
    pub fn handle(&mut self, msg: CoordinatorMessage) -> Option<NodeMessage> {
        if msg.epoch() < self.epoch {
            return None;
        }
        match msg {
            CoordinatorMessage::RequestLocalVector { .. } => {
                // A restarted node can be pulled before its first data
                // update; stay silent and let the coordinator's
                // retransmit timer re-pull once data exists.
                let vector = self.x.clone()?;
                Some(NodeMessage::LocalVector {
                    node: self.id,
                    vector,
                    epoch: self.epoch,
                })
            }
            CoordinatorMessage::NewConstraints { zone, slack, epoch } => {
                assert_eq!(slack.len(), self.f.dim(), "slack dimension mismatch");
                self.zone = Some(zone);
                self.slack = slack;
                self.epoch = epoch;
                self.pending = false;
                self.pending_kind = None;
                None
            }
            CoordinatorMessage::NewConstraintsCached { update, slack, epoch } => {
                assert_eq!(slack.len(), self.f.dim(), "slack dimension mismatch");
                // The matrix-free form is only applicable when this node
                // still holds the curvature it refers to. A restarted
                // node does not, and neither does one that skipped a
                // sync on a lossy link (the missed install could have
                // changed the curvature) — ask for a full resync
                // instead of panicking or silently monitoring the wrong
                // penalty (self-healing under crash/rejoin).
                if epoch > self.epoch + 1 {
                    return self.reregister();
                }
                let Some(curvature) = self.zone.as_ref().map(|z| z.curvature.clone()) else {
                    return self.reregister();
                };
                self.zone = Some(SafeZone {
                    x0: update.x0,
                    f0: update.f0,
                    grad0: update.grad0,
                    l: update.l,
                    u: update.u,
                    dc: update.dc,
                    curvature,
                    neighborhood: update.neighborhood,
                });
                self.slack = slack;
                self.epoch = epoch;
                self.pending = false;
                self.pending_kind = None;
                None
            }
            CoordinatorMessage::SlackUpdate { slack, epoch } => {
                assert_eq!(slack.len(), self.f.dim(), "slack dimension mismatch");
                // A rebalance presumes the constraints of its epoch. A
                // node that lost them (restart) or skipped the sync that
                // opened `epoch` (lossy link) must resync fully first.
                if self.zone.is_none() || epoch > self.epoch {
                    return self.reregister();
                }
                self.slack = slack;
                self.pending = false;
                self.pending_kind = None;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::safezone::{Curvature, DcKind};
    use automon_autodiff::{AutoDiffFn, Scalar, ScalarFn};

    struct Identity1;
    impl ScalarFn for Identity1 {
        fn dim(&self) -> usize {
            1
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            x[0]
        }
    }

    fn f() -> Arc<dyn MonitoredFunction> {
        Arc::new(AutoDiffFn::new(Identity1))
    }

    fn zone() -> SafeZone {
        // f(x) = x, x0 = 0, ε = 1: safe zone is simply |x| ≤ 1.
        SafeZone {
            x0: vec![0.0],
            f0: 0.0,
            grad0: vec![1.0],
            l: -1.0,
            u: 1.0,
            dc: DcKind::ConvexDiff,
            curvature: Curvature::Scalar(0.0),
            neighborhood: None,
        }
    }

    #[test]
    fn first_update_registers() {
        let mut n = Node::new(0, f());
        let m = n.update_data(vec![0.5]).expect("registration message");
        assert!(matches!(
            m,
            NodeMessage::Violation {
                kind: ViolationKind::Uninitialized,
                ..
            }
        ));
        // Second update while pending stays silent.
        assert!(n.update_data(vec![0.6]).is_none());
    }

    #[test]
    fn monitors_quietly_inside_zone() {
        let mut n = Node::new(1, f());
        let _ = n.update_data(vec![0.0]);
        n.handle(CoordinatorMessage::NewConstraints {
            zone: zone(),
            slack: vec![0.0],
            epoch: 1,
        });
        assert!(!n.is_pending());
        assert!(n.update_data(vec![0.3]).is_none());
        assert!(n.update_data(vec![-0.9]).is_none());
        assert_eq!(n.current_value(), Some(0.0));
    }

    #[test]
    fn reports_violation_once() {
        let mut n = Node::new(2, f());
        let _ = n.update_data(vec![0.0]);
        n.handle(CoordinatorMessage::NewConstraints {
            zone: zone(),
            slack: vec![0.0],
            epoch: 1,
        });
        let m = n.update_data(vec![1.5]).expect("violation");
        match m {
            NodeMessage::Violation {
                node,
                kind,
                local_vector,
                epoch: 1,
            } => {
                assert_eq!(node, 2);
                assert_eq!(kind, ViolationKind::SafeZone);
                assert_eq!(local_vector, vec![1.5]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Suppressed while pending.
        assert!(n.update_data(vec![2.0]).is_none());
        // Resolution re-arms the check.
        n.handle(CoordinatorMessage::SlackUpdate {
            slack: vec![-1.5],
            epoch: 1,
        });
        assert!(!n.is_pending());
        // 2.0 + (-1.5) = 0.5 is inside — silent.
        assert!(n.update_data(vec![2.0]).is_none());
        // 3.0 - 1.5 = 1.5 violates again.
        assert!(n.update_data(vec![3.0]).is_some());
    }

    #[test]
    fn slack_shifts_the_checked_point() {
        let mut n = Node::new(0, f());
        let _ = n.update_data(vec![0.0]);
        n.handle(CoordinatorMessage::NewConstraints {
            zone: zone(),
            slack: vec![0.9],
            epoch: 1,
        });
        // 0.3 + 0.9 = 1.2 > 1 → violation even though raw x is inside.
        assert!(n.update_data(vec![0.3]).is_some());
    }

    #[test]
    fn replies_with_local_vector() {
        let mut n = Node::new(4, f());
        let _ = n.update_data(vec![0.7]);
        let m = n
            .handle(CoordinatorMessage::RequestLocalVector { epoch: 0 })
            .unwrap();
        assert_eq!(
            m,
            NodeMessage::LocalVector {
                node: 4,
                vector: vec![0.7],
                epoch: 0,
            }
        );
    }
}
