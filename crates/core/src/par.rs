//! Deterministic fork-join for the full-sync hot path.
//!
//! The coordinator's expensive sync work — extreme-eigenvalue probes in
//! ADCD-X and per-node safe-zone checks during resolution — is
//! embarrassingly parallel, but AutoMon's protocol tests (and the
//! paper's reproducibility claims) demand that the monitoring trace not
//! depend on the worker count. [`par_map_with`] guarantees that: items
//! are striped over scoped worker threads, each result is written back
//! to its item's slot, and the caller reduces over the returned `Vec` in
//! item order. Thread scheduling can change *when* a result is computed
//! but never *where* it lands, so any order-sensitive reduction (e.g.
//! strict-`<` argmin) sees the exact sequence the inline path produces.

/// Map `f` over `items` on up to `workers` scoped threads, preserving
/// item order in the output.
///
/// Each worker owns one context built by `init` — scratch buffers,
/// tapes, eigen workspaces — so the hot path allocates per *worker*, not
/// per item. With `workers <= 1` (or a single item) everything runs
/// inline on the caller's thread with one context and no spawns; the
/// output is identical either way.
///
/// # Panics
/// Propagates panics from `f`/`init` after all workers have joined.
pub fn par_map_with<T, R, C, I, F>(items: &[T], workers: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> C + Sync,
    F: Fn(&mut C, usize, &T) -> R + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        let mut ctx = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut ctx, i, t))
            .collect();
    }
    let w = workers.min(items.len());
    let init = &init;
    let f = &f;
    let parts: Vec<Vec<(usize, R)>> = crossbeam::scope(|s| {
        let handles: Vec<_> = (0..w)
            .map(|k| {
                s.spawn(move |_| {
                    let mut ctx = init();
                    items
                        .iter()
                        .enumerate()
                        .skip(k)
                        .step_by(w)
                        .map(|(i, t)| (i, f(&mut ctx, i, t)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
    .unwrap_or_else(|e| std::panic::resume_unwind(e));

    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    for part in parts {
        for (i, r) in part {
            out[i] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("par_map_with: missing result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<usize> = (0..37).collect();
        let seq = par_map_with(&items, 1, || (), |_, i, &t| (i, t * t));
        for workers in [2, 3, 8, 64] {
            let par = par_map_with(&items, workers, || (), |_, i, &t| (i, t * t));
            assert_eq!(par, seq);
        }
    }

    #[test]
    fn context_is_per_worker_and_reused() {
        // Each worker counts the items it handled; totals must cover all.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let handled = AtomicUsize::new(0);
        let items: Vec<u8> = vec![0; 100];
        par_map_with(
            &items,
            4,
            || 0usize,
            |seen, _, _| {
                *seen += 1;
                handled.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(handled.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<i32> = vec![];
        assert!(par_map_with(&none, 8, || (), |_, _, &t| t).is_empty());
        assert_eq!(par_map_with(&[5], 8, || (), |_, _, &t| t * 3), vec![15]);
    }

    #[test]
    #[should_panic(expected = "item 5 exploded")]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..8).collect();
        par_map_with(&items, 2, || (), |_, i, _| {
            if i == 5 {
                panic!("item 5 exploded");
            }
        });
    }
}
