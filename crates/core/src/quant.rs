//! Shared `x0` cell quantization.
//!
//! Two subsystems index state by "which cell of the reference-point grid
//! does this vector fall into": the coordinator decomposition cache
//! ([`crate::cache::CacheKey`], DESIGN.md §3.11) and the fleet's shard
//! router (DESIGN.md §3.14), which groups leaf reference points by cell
//! so coordinators sharing one decomposition cache actually collide on
//! the same keys. Both MUST quantize identically — a cache whose keys
//! are computed one way and a router that buckets another way silently
//! stops sharing — so the arithmetic lives here, in one place, and both
//! call it.
//!
//! The quantization is an *index*, never a correctness input: exact
//! cache hits still require bit-identical `x0`/`r`/neighborhood, and
//! shard routing only affects which coordinator owns a stream, not what
//! the protocol computes.

/// Default cell width of the `x0` grid, shared by
/// [`crate::cache::DecompCacheConfig`] and the fleet router.
pub const DEFAULT_CELL: f64 = 1e-3;

/// Quantize a vector onto the cell grid: `floor(x_i / cell)` per
/// coordinate. Non-positive `cell` widths fall back to
/// [`DEFAULT_CELL`], matching the cache's config sanitation.
pub fn quantize_cell(x: &[f64], cell: f64) -> Vec<i64> {
    let cell = sanitize_cell(cell);
    x.iter().map(|&v| (v / cell).floor() as i64).collect()
}

/// The sanitized cell width [`quantize_cell`] actually divides by.
pub fn sanitize_cell(cell: f64) -> f64 {
    if cell > 0.0 {
        cell
    } else {
        DEFAULT_CELL
    }
}

/// Bucket a neighborhood radius: `floor(log2 r)`, with non-finite or
/// non-positive radii collapsed into a single sentinel bucket.
pub fn radius_bucket(r: f64) -> i32 {
    if r.is_finite() && r > 0.0 {
        r.log2().floor() as i32
    } else {
        i32::MIN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_floors_per_coordinate() {
        assert_eq!(quantize_cell(&[0.0, 1.0, -1.0], 1.0), vec![0, 1, -1]);
        // floor, not truncate: negative values round away from zero.
        assert_eq!(quantize_cell(&[-0.0001], 1e-3), vec![-1]);
        assert_eq!(quantize_cell(&[0.0029, 0.0031], 1e-3), vec![2, 3]);
    }

    #[test]
    fn bad_cell_widths_fall_back_to_default() {
        assert_eq!(
            quantize_cell(&[0.5], 0.0),
            quantize_cell(&[0.5], DEFAULT_CELL)
        );
        assert_eq!(
            quantize_cell(&[0.5], -2.0),
            quantize_cell(&[0.5], DEFAULT_CELL)
        );
        assert_eq!(sanitize_cell(f64::NAN.min(0.0)), DEFAULT_CELL);
    }

    #[test]
    fn radius_buckets_are_log2_floors() {
        assert_eq!(radius_bucket(1.0), 0);
        assert_eq!(radius_bucket(2.0), 1);
        assert_eq!(radius_bucket(3.9), 1);
        assert_eq!(radius_bucket(0.5), -1);
        assert_eq!(radius_bucket(0.0), i32::MIN);
        assert_eq!(radius_bucket(-1.0), i32::MIN);
        assert_eq!(radius_bucket(f64::INFINITY), i32::MIN);
        assert_eq!(radius_bucket(f64::NAN), i32::MIN);
    }
}
