//! AutoMon core: automatic distributed monitoring of arbitrary functions.
//!
//! This crate implements the contribution of *AutoMon: Automatic
//! Distributed Monitoring for Arbitrary Multivariate Functions* (SIGMOD
//! 2022): given a differentiable function `f` of the average `x̄` of `n`
//! distributed local vectors and an approximation error bound `ε`, it
//! maintains `|f(x0) - f(x̄)| ≤ ε` at a coordinator while nodes stay silent
//! as long as their local constraints hold.
//!
//! The pieces map one-to-one onto the paper:
//!
//! * [`adcd`] — ADCD-X (extreme Hessian eigenvalues over a neighborhood,
//!   found numerically; §3.1) and ADCD-E (eigendecomposition split of a
//!   constant Hessian; §3.2), plus the convex-vs-concave DC heuristic
//!   (§3.4).
//! * [`safezone`] — the local constraints derived from a DC decomposition
//!   (§3.3) together with the neighborhood box `B` (§3.5) and the sanity
//!   check for possibly-faulty constraints (§3.7).
//! * [`coordinator`] / [`node`] — Algorithm 1, with slack and LRU lazy
//!   sync (§3.5) and the adaptive neighborhood-growth heuristic (§3.6).
//! * [`tuning`] — Algorithm 2, the neighborhood-size tuning procedure
//!   (§3.6).
//! * [`messages`] — the typed messages the two sides exchange; an
//!   application routes them over a fabric of its choice (§3.8), e.g. the
//!   in-process fabric in `automon-net`.
//!
//! The function abstraction is [`MonitoredFunction`] (an alias for
//! `automon_autodiff::DifferentiableFn`); the usual way to obtain one is
//! wrapping a generic function body in `automon_autodiff::AutoDiffFn`.

pub mod adcd;
pub mod cache;
mod config;
pub mod coordinator;
pub mod journal;
pub mod ledger;
pub mod messages;
pub mod node;
pub mod par;
pub mod quant;
pub mod safezone;
pub mod tuning;

pub use adcd::{AdcdKind, DcDecomposition, RitzSeeds, SpectralStats};
pub use cache::{
    CacheKey, CacheLookup, CachePolicy, CacheStats, DecompCache, DecompCacheConfig,
    EvictionPolicy, SharedDecompCache,
};
pub use config::{ApproximationKind, EigenObjective, EigenSearch, MonitorConfig, MonitorConfigBuilder, NeighborhoodMode, Parallelism};
pub use automon_linalg::SpectralBackend;
pub use coordinator::{Coordinator, CoordinatorEvent, CoordinatorSnapshot, CoordinatorStats, Observer};
pub use journal::{Journal, Transition};
pub use ledger::{CommCause, CommLedger, LedgerCell, LedgerEntry};
pub use messages::{
    CoordinatorMessage, Epoch, NodeId, NodeMessage, Outbound, Recipient, TierMessage, ZoneUpdate,
};
pub use node::Node;
pub use safezone::{Curvature, DcKind, Domain, NeighborhoodBox, SafeZone, ViolationKind};

/// The object-safe function interface AutoMon monitors.
///
/// Alias of [`automon_autodiff::DifferentiableFn`]; wrap a generic
/// function body in [`automon_autodiff::AutoDiffFn`] to obtain one.
pub use automon_autodiff::DifferentiableFn as MonitoredFunction;
