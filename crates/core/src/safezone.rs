//! Safe zones: ADCD local constraints plus the neighborhood box.
//!
//! A [`SafeZone`] packages everything a node needs to check its local
//! constraints (paper §3.3, §3.5): the reference point `x0`, thresholds
//! `L, U`, the chosen DC representation, the convex curvature penalty
//! derived from it, and the neighborhood `B`. It is pure data
//! (serializable) — the monitored function itself is shared code that both
//! coordinator and nodes already hold.

use automon_linalg::{vector, Matrix};
use serde::{Deserialize, Serialize};

use crate::MonitoredFunction;

/// Relative slack applied to constraint comparisons to absorb roundoff.
const REL_TOL: f64 = 1e-9;

/// The function's domain `D` as an optional box.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Domain {
    /// Per-coordinate lower bounds (`None` = unbounded below).
    pub lo: Option<Vec<f64>>,
    /// Per-coordinate upper bounds (`None` = unbounded above).
    pub hi: Option<Vec<f64>>,
}

impl Domain {
    /// Unbounded domain.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Read the domain a [`MonitoredFunction`] declares.
    pub fn of(f: &dyn MonitoredFunction) -> Self {
        Self {
            lo: f.lower_bounds(),
            hi: f.upper_bounds(),
        }
    }

    /// `true` when `x` satisfies the domain bounds.
    pub fn contains(&self, x: &[f64]) -> bool {
        if let Some(lo) = &self.lo {
            if x.iter().zip(lo).any(|(&xi, &l)| xi < l) {
                return false;
            }
        }
        if let Some(hi) = &self.hi {
            if x.iter().zip(hi).any(|(&xi, &h)| xi > h) {
                return false;
            }
        }
        true
    }

    /// Intersect the ball `[center - r, center + r]` with the domain.
    pub fn neighborhood(&self, center: &[f64], r: f64) -> NeighborhoodBox {
        let mut lo: Vec<f64> = center.iter().map(|&c| c - r).collect();
        let mut hi: Vec<f64> = center.iter().map(|&c| c + r).collect();
        if let Some(dlo) = &self.lo {
            for (l, &d) in lo.iter_mut().zip(dlo) {
                *l = l.max(d);
            }
        }
        if let Some(dhi) = &self.hi {
            for (h, &d) in hi.iter_mut().zip(dhi) {
                *h = h.min(d);
            }
        }
        // The center is a feasible point, so lo ≤ hi holds whenever the
        // center is in the domain; clamp defensively regardless.
        for (l, h) in lo.iter_mut().zip(hi.iter_mut()) {
            if *l > *h {
                std::mem::swap(l, h);
            }
        }
        NeighborhoodBox { lo, hi }
    }
}

/// The neighborhood `B = [x0 - r, x0 + r] ∩ D` (paper §3.5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeighborhoodBox {
    /// Per-coordinate lower bounds.
    pub lo: Vec<f64>,
    /// Per-coordinate upper bounds.
    pub hi: Vec<f64>,
}

impl NeighborhoodBox {
    /// `true` when `x` lies in the box (inclusive).
    pub fn contains(&self, x: &[f64]) -> bool {
        vector::in_box(x, &self.lo, &self.hi)
    }

    /// Convert into optimizer bounds.
    pub fn to_bounds(&self) -> automon_opt::Bounds {
        automon_opt::Bounds::new(self.lo.clone(), self.hi.clone())
    }
}

/// Which DC representation the safe zone uses (paper §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DcKind {
    /// `f = ǧ - ȟ` with `ǧ, ȟ` convex.
    ConvexDiff,
    /// `f = ĝ - ĥ` with `ĝ, ĥ` concave.
    ConcaveDiff,
    /// No DC decomposition: the local constraint is the raw admissible
    /// check `L ≤ f(x) ≤ U`. Non-convex in general — this reproduces the
    /// "no ADCD" ablation arm (paper §4.6) and is where missed violations
    /// come from.
    AdmissibleOnly,
}

/// The convex quadratic penalty `q(Δ)` the DC decomposition adds.
///
/// * ADCD-X (paper Lemma 1): `q(Δ) = ½·c·‖Δ‖²` with `c = |λ⁻_min|`
///   (convex difference) or `c = λ⁺_max` (concave difference).
/// * ADCD-E (paper Lemma 2): `q(Δ) = ½·Δᵀ·M·Δ` with `M = -H⁻` (convex
///   difference) or `M = H⁺` (concave difference); both are PSD.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Curvature {
    /// Isotropic `½·c·‖Δ‖²` with `c ≥ 0`.
    Scalar(f64),
    /// Anisotropic `½·Δᵀ·M·Δ` with PSD `M`.
    Quadratic(Matrix),
}

impl Curvature {
    /// Evaluate `q(Δ)` at the offset `Δ = x - x0`.
    pub fn eval(&self, delta: &[f64]) -> f64 {
        match self {
            Curvature::Scalar(c) => 0.5 * c * vector::norm_sq(delta),
            Curvature::Quadratic(m) => 0.5 * m.quadratic_form(delta),
        }
    }
}

/// A violation a node can report (paper §3.5, §3.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViolationKind {
    /// The node has no constraints yet (initial registration).
    Uninitialized,
    /// The (slack-adjusted) local vector left the neighborhood `B`.
    Neighborhood,
    /// The ADCD local constraints are violated.
    SafeZone,
    /// The vector satisfies the constraints but `f` escapes `[L, U]`:
    /// the decomposition was not a true DC decomposition (possible for
    /// ADCD-X on non-convex functions; paper §3.7). The coordinator must
    /// full-sync.
    FaultyConstraints,
}

/// The local constraints distributed by the coordinator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SafeZone {
    /// Reference point `x0`.
    pub x0: Vec<f64>,
    /// `f(x0)`.
    pub f0: f64,
    /// `∇f(x0)`.
    pub grad0: Vec<f64>,
    /// Lower threshold `L`.
    pub l: f64,
    /// Upper threshold `U`.
    pub u: f64,
    /// DC representation in force.
    pub dc: DcKind,
    /// Convex penalty from the DC decomposition.
    pub curvature: Curvature,
    /// Neighborhood `B`; `None` means all of `D` (ADCD-E or no-ADCD).
    pub neighborhood: Option<NeighborhoodBox>,
}

impl SafeZone {
    /// Check `x` against the local constraints, most specific violation
    /// first: neighborhood, then safe zone, then the §3.7 sanity check.
    ///
    /// Returns `None` when all constraints hold.
    pub fn check(&self, f: &dyn MonitoredFunction, x: &[f64]) -> Option<ViolationKind> {
        if let Some(b) = &self.neighborhood {
            if !b.contains(x) {
                return Some(ViolationKind::Neighborhood);
            }
        }
        let tol = REL_TOL * (1.0 + self.f0.abs() + self.u.abs() + self.l.abs());
        let fx = f.eval(x);
        if self.dc == DcKind::AdmissibleOnly {
            return if fx < self.l - tol || fx > self.u + tol {
                Some(ViolationKind::SafeZone)
            } else {
                None
            };
        }

        let delta = vector::sub(x, &self.x0);
        let q = self.curvature.eval(&delta);
        let tangent = self.f0 + vector::dot(&self.grad0, &delta);
        let in_zone = match self.dc {
            DcKind::ConvexDiff => {
                // ǧ(x) ≤ U  and  ȟ(x) ≤ f(x0) + ∇f(x0)ᵀΔ - L   (paper eq. 4)
                fx + q <= self.u + tol && q <= tangent - self.l + tol
            }
            DcKind::ConcaveDiff => {
                // ĥ(x) ≥ f(x0) + ∇f(x0)ᵀΔ - U  and  ĝ(x) ≥ L   (paper eq. 5)
                -q >= tangent - self.u - tol && fx - q >= self.l - tol
            }
            DcKind::AdmissibleOnly => unreachable!("handled above"),
        };
        if !in_zone {
            return Some(ViolationKind::SafeZone);
        }
        // Sanity check (paper §3.7): inside the safe zone, f must be
        // admissible; otherwise the decomposition was not a true DC
        // decomposition and the constraints are faulty.
        if fx < self.l - tol || fx > self.u + tol {
            return Some(ViolationKind::FaultyConstraints);
        }
        None
    }

    /// `true` when `x` satisfies all constraints.
    pub fn contains(&self, f: &dyn MonitoredFunction, x: &[f64]) -> bool {
        self.check(f, x).is_none()
    }

    /// `true` when `v` is admissible: `L ≤ v ≤ U`.
    pub fn admissible(&self, v: f64) -> bool {
        let tol = REL_TOL * (1.0 + self.f0.abs() + self.u.abs() + self.l.abs());
        v >= self.l - tol && v <= self.u + tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automon_autodiff::{AutoDiffFn, Scalar, ScalarFn};

    struct Sin;
    impl ScalarFn for Sin {
        fn dim(&self) -> usize {
            1
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            x[0].sin()
        }
    }

    /// The paper's Figure 1 setup: f = sin(x), x0 = π/2, ε = 0.2
    /// (L = 0.8, U = 1.2), with global extreme curvatures λ⁻ = -1,
    /// λ⁺ = 1.
    fn fig1_zone(dc: DcKind) -> SafeZone {
        let x0 = std::f64::consts::FRAC_PI_2;
        SafeZone {
            x0: vec![x0],
            f0: 1.0,
            grad0: vec![0.0],
            l: 0.8,
            u: 1.2,
            dc,
            curvature: Curvature::Scalar(1.0),
            neighborhood: None,
        }
    }

    #[test]
    fn fig1_convex_difference_safe_zone() {
        // Paper Figure 1(b): the convex-difference safe zone is
        // approximately [0.938, 2.203].
        let f = AutoDiffFn::new(Sin);
        let z = fig1_zone(DcKind::ConvexDiff);
        assert!(z.contains(&f, &[std::f64::consts::FRAC_PI_2]));
        assert!(z.contains(&f, &[0.95]));
        assert!(z.contains(&f, &[2.19]));
        assert_eq!(z.check(&f, &[0.92]), Some(ViolationKind::SafeZone));
        assert_eq!(z.check(&f, &[2.21]), Some(ViolationKind::SafeZone));
        // Bisect the left boundary and compare with the paper's value.
        let (mut lo, mut hi) = (0.8, 1.5);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if z.contains(&f, &[mid]) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        assert!((hi - 0.938).abs() < 2e-3, "left boundary {hi}");
        let (mut lo, mut hi) = (1.6, 2.5);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if z.contains(&f, &[mid]) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        assert!((lo - 2.203).abs() < 2e-3, "right boundary {lo}");
    }

    #[test]
    fn fig1_concave_difference_safe_zone() {
        // Paper Figure 1(c): the concave-difference safe zone is
        // approximately [1.121, 2.021] — strictly narrower than (b).
        let f = AutoDiffFn::new(Sin);
        let z = fig1_zone(DcKind::ConcaveDiff);
        assert!(z.contains(&f, &[1.2]));
        assert!(z.contains(&f, &[2.0]));
        assert_eq!(z.check(&f, &[1.10]), Some(ViolationKind::SafeZone));
        assert_eq!(z.check(&f, &[2.05]), Some(ViolationKind::SafeZone));
        let (mut lo, mut hi) = (0.9, 1.5);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if z.contains(&f, &[mid]) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        assert!((hi - 1.1206).abs() < 2e-3, "left boundary {hi}");
        let (mut lo, mut hi) = (1.6, 2.4);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if z.contains(&f, &[mid]) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        assert!((lo - 2.0210).abs() < 2e-3, "right boundary {lo}");
    }

    #[test]
    fn safe_zone_is_subset_of_admissible_region() {
        // Scan the axis: every safe-zone point must be admissible.
        let f = AutoDiffFn::new(Sin);
        for dc in [DcKind::ConvexDiff, DcKind::ConcaveDiff] {
            let z = fig1_zone(dc);
            for i in 0..400 {
                let x = [i as f64 * 0.01];
                if z.contains(&f, &x) {
                    let v = f.eval(&x);
                    assert!(z.admissible(v), "{dc:?}: x = {} f = {v}", x[0]);
                }
            }
        }
    }

    #[test]
    fn neighborhood_violation_precedes_safe_zone() {
        let f = AutoDiffFn::new(Sin);
        let mut z = fig1_zone(DcKind::ConvexDiff);
        z.neighborhood = Some(NeighborhoodBox {
            lo: vec![1.4],
            hi: vec![1.8],
        });
        assert_eq!(z.check(&f, &[2.0]), Some(ViolationKind::Neighborhood));
        assert!(z.contains(&f, &[1.5]));
    }

    #[test]
    fn faulty_constraints_detected() {
        // Deliberately broken decomposition: zero curvature on a concave
        // stretch makes the "safe zone" leak outside the admissible
        // region; the sanity check must catch it.
        let f = AutoDiffFn::new(Sin);
        let z = SafeZone {
            x0: vec![std::f64::consts::FRAC_PI_2],
            f0: 1.0,
            grad0: vec![0.0],
            l: 0.95,
            u: 1.2,
            dc: DcKind::ConvexDiff,
            curvature: Curvature::Scalar(0.0), // wrong: sin needs |λ⁻| = 1
            neighborhood: None,
        };
        // sin(1.2) ≈ 0.932 < L, yet with q = 0 both constraints hold:
        // ǧ = f ≤ U and 0 ≤ f0 - L.
        assert_eq!(z.check(&f, &[1.2]), Some(ViolationKind::FaultyConstraints));
    }

    #[test]
    fn admissible_only_checks_raw_thresholds() {
        let f = AutoDiffFn::new(Sin);
        let z = SafeZone {
            dc: DcKind::AdmissibleOnly,
            ..fig1_zone(DcKind::ConvexDiff)
        };
        assert!(z.contains(&f, &[1.0])); // sin(1.0) ≈ 0.84 ∈ [0.8, 1.2]
        assert_eq!(z.check(&f, &[0.5]), Some(ViolationKind::SafeZone));
    }

    #[test]
    fn quadratic_curvature_matches_scalar_for_identity_times_c() {
        let c = 0.7;
        let m = Matrix::from_diag(&[c, c, c]);
        let delta = [0.3, -1.0, 2.0];
        let s = Curvature::Scalar(c).eval(&delta);
        let q = Curvature::Quadratic(m).eval(&delta);
        assert!((s - q).abs() < 1e-12);
    }

    #[test]
    fn domain_neighborhood_intersection() {
        let d = Domain {
            lo: Some(vec![0.0, 0.0]),
            hi: Some(vec![1.0, 10.0]),
        };
        let b = d.neighborhood(&[0.5, 5.0], 2.0);
        assert_eq!(b.lo, vec![0.0, 3.0]);
        assert_eq!(b.hi, vec![1.0, 7.0]);
        assert!(b.contains(&[0.5, 5.0]));
        assert!(!b.contains(&[0.5, 8.0]));
        assert!(d.contains(&[0.5, 5.0]));
        assert!(!d.contains(&[-0.1, 5.0]));
    }

    #[test]
    fn convex_zone_is_convex_along_segments() {
        // Midpoints of safe-zone points stay in the safe zone (the key
        // GM correctness property; paper §3.3).
        let f = AutoDiffFn::new(Sin);
        let z = fig1_zone(DcKind::ConvexDiff);
        let points: Vec<f64> = (0..300).map(|i| 0.9 + i as f64 * 0.005).collect();
        let inside: Vec<f64> = points
            .into_iter()
            .filter(|&p| z.contains(&f, &[p]))
            .collect();
        for (i, &a) in inside.iter().enumerate() {
            for &b in &inside[i..] {
                let mid = [(a + b) * 0.5];
                assert!(z.contains(&f, &mid), "midpoint of {a} and {b} escaped");
            }
        }
    }

    #[test]
    fn serde_round_trip() {
        let z = fig1_zone(DcKind::ConcaveDiff);
        let json = serde_json::to_string(&z).unwrap();
        let back: SafeZone = serde_json::from_str(&json).unwrap();
        assert_eq!(z, back);
    }
}
