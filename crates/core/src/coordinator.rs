//! The AutoMon coordinator algorithm (paper Algorithm 1, coordinator side)
//! with slack and LRU lazy sync (paper §3.5).

use std::collections::BTreeSet;
use std::sync::Arc;

use automon_linalg::vector;
use automon_obs::{Counter, Gauge, Telemetry, TraceCtx};

use crate::adcd::{self, AdcdKind, DcDecomposition};
use crate::cache::{CacheLookup, SharedDecompCache, SlotList};
use crate::config::{ApproximationKind, MonitorConfig};
use crate::ledger::CommCause;
use crate::messages::{CoordinatorMessage, Epoch, NodeId, NodeMessage, Outbound};
use crate::safezone::{Curvature, DcKind, Domain, NeighborhoodBox, SafeZone, ViolationKind};
use crate::MonitoredFunction;

/// Counters the coordinator accumulates over a run.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CoordinatorStats {
    /// Full syncs performed (including the initial one).
    pub full_syncs: usize,
    /// Lazy syncs that resolved without a full sync.
    pub lazy_syncs: usize,
    /// Neighborhood violations received.
    pub neighborhood_violations: usize,
    /// Safe-zone violations received.
    pub safezone_violations: usize,
    /// Faulty-constraint reports received (§3.7 sanity check).
    pub faulty_reports: usize,
    /// Times the adaptive heuristic doubled `r` (§3.6).
    pub r_doublings: usize,
    /// Stale-epoch frames discarded (lossy-transport hardening).
    #[serde(default)]
    pub stale_discards: usize,
    /// Per-node constraint re-installs triggered by stale frames or
    /// re-registrations.
    #[serde(default)]
    pub resyncs: usize,
    /// Nodes evicted after being declared dead.
    #[serde(default)]
    pub evictions: usize,
    /// Nodes re-admitted after an eviction.
    #[serde(default)]
    pub rejoins: usize,
}

/// A restorable snapshot of the coordinator's protocol state
/// (everything except the function and configuration, which are code).
///
/// Produce with [`Coordinator::snapshot`], persist anywhere (`serde`),
/// and revive with [`Coordinator::restore`] +
/// [`Coordinator::resync_messages`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CoordinatorSnapshot {
    /// Number of nodes.
    pub n: usize,
    /// Neighborhood radius in force.
    pub r: f64,
    /// Constraints in force, if initialized.
    pub zone: Option<SafeZone>,
    /// Per-node slack vectors.
    pub slack: Vec<Vec<f64>>,
    /// Last known raw local vectors.
    pub known_x: Vec<Option<Vec<f64>>>,
    /// LRU contact order (front = least recent).
    pub lru: Vec<NodeId>,
    /// Accumulated statistics.
    pub stats: CoordinatorStats,
    /// Adaptive-growth counter (§3.6).
    pub consecutive_neighborhood: usize,
    /// Constraint epoch in force (snapshots from older versions restore
    /// as epoch 0; the first post-restore full sync re-opens it).
    #[serde(default)]
    pub epoch: Epoch,
    /// Per-node liveness; evicted nodes are `false`. Empty in snapshots
    /// from older versions (restored as all-alive).
    #[serde(default)]
    pub alive: Vec<bool>,
    /// Which nodes hold the current curvature matrices (§4.4 cached
    /// installs). Empty in snapshots from older versions (restored as
    /// all-false: the first post-restore sync re-ships curvature).
    #[serde(default)]
    pub node_has_curvature: Vec<bool>,
}

/// A notification from the coordinator to the embedding application.
///
/// The paper's motivating use case is *acting* on the monitored value
/// (e.g. raising an intrusion alert); register a callback with
/// [`Coordinator::set_observer`] to be told whenever the approximation
/// or the protocol state changes.
#[derive(Debug, Clone, PartialEq)]
pub enum CoordinatorEvent {
    /// A full sync installed a new reference point; `value` is the new
    /// approximation `f(x0)`.
    FullSync {
        /// The new approximation.
        value: f64,
        /// Lower threshold now in force.
        lower: f64,
        /// Upper threshold now in force.
        upper: f64,
    },
    /// A lazy sync rebalanced the given number of nodes (the
    /// approximation did not change).
    LazySync {
        /// Size of the balancing set.
        nodes: usize,
    },
    /// The adaptive heuristic doubled the neighborhood radius.
    NeighborhoodDoubled {
        /// The new radius.
        r: f64,
    },
    /// A node reported faulty constraints (§3.7 sanity check).
    FaultyConstraints {
        /// The reporting node.
        node: NodeId,
    },
    /// A node was declared dead and removed from the monitored set; the
    /// surviving nodes' slack is being redistributed.
    NodeEvicted {
        /// The evicted node.
        node: NodeId,
    },
    /// A previously evicted node spoke again and is being resynced from
    /// scratch.
    NodeRejoined {
        /// The rejoining node.
        node: NodeId,
    },
}

/// Observer callback type.
pub type Observer = Box<dyn FnMut(&CoordinatorEvent) + Send>;

/// Pre-registered telemetry handles for the coordinator.
///
/// Built from [`Telemetry::disabled`] by default, so every update below
/// is a single no-op branch until [`Coordinator::set_telemetry`]
/// installs a live handle — the protocol pays nothing for observability
/// it did not ask for.
struct CoordTel {
    tel: Telemetry,
    full_syncs: Counter,
    lazy_syncs: Counter,
    viol_neighborhood: Counter,
    viol_safezone: Counter,
    viol_faulty: Counter,
    r_doublings: Counter,
    stale_discards: Counter,
    resyncs: Counter,
    evictions: Counter,
    rejoins: Counter,
    slack_updates: Counter,
    /// Lazy-sync growth picks that had to fall back to a backpressured
    /// node because no unpressured candidate existed.
    backpressure_fallbacks: Counter,
    cache_hits: Counter,
    cache_near_hits: Counter,
    cache_misses: Counter,
    cache_evictions: Counter,
    cache_ghost_hits: Counter,
    /// Per-policy adaptation gauge, labeled with the active policy;
    /// only registered when the decomposition cache is configured.
    cache_adaptation: Option<Gauge>,
    snap_taken: Counter,
    snap_deferred: Counter,
    epoch: Gauge,
    radius: Gauge,
    alive: Gauge,
}

impl CoordTel {
    /// `cache_policy` is the active decomposition-cache policy name,
    /// when the cache is configured; it labels the per-policy gauges.
    fn new(tel: Telemetry, cache_policy: Option<&'static str>) -> Self {
        let cache_adaptation = cache_policy.map(|p| {
            let g = tel.gauge(
                &format!("automon_coord_decomp_cache_policy{{policy=\"{p}\"}}"),
                "Active decomposition-cache eviction policy (1 = active)",
            );
            g.set(1.0);
            tel.gauge(
                &format!("automon_coord_decomp_cache_adaptation{{policy=\"{p}\"}}"),
                "Policy adaptation signal (ARC target p, SLRU protected \
                 occupancy, LRU-K fully-observed residents)",
            )
        });
        Self {
            full_syncs: tel.counter(
                "automon_coord_full_syncs_total",
                "Full syncs performed (including the initial one)",
            ),
            lazy_syncs: tel.counter(
                "automon_coord_lazy_syncs_total",
                "Lazy syncs resolved without a full sync",
            ),
            viol_neighborhood: tel.counter(
                "automon_coord_violations_total{kind=\"neighborhood\"}",
                "Violation reports received, by kind",
            ),
            viol_safezone: tel.counter(
                "automon_coord_violations_total{kind=\"safezone\"}",
                "Violation reports received, by kind",
            ),
            viol_faulty: tel.counter(
                "automon_coord_violations_total{kind=\"faulty\"}",
                "Violation reports received, by kind",
            ),
            r_doublings: tel.counter(
                "automon_coord_r_doublings_total",
                "Adaptive doublings of the neighborhood radius",
            ),
            stale_discards: tel.counter(
                "automon_coord_stale_discards_total",
                "Stale-epoch frames discarded",
            ),
            resyncs: tel.counter(
                "automon_coord_resyncs_total",
                "Per-node constraint re-installs",
            ),
            evictions: tel.counter(
                "automon_coord_evictions_total",
                "Nodes evicted after being declared dead",
            ),
            rejoins: tel.counter(
                "automon_coord_rejoins_total",
                "Nodes re-admitted after an eviction",
            ),
            slack_updates: tel.counter(
                "automon_coord_slack_updates_total",
                "Slack vectors redistributed by lazy syncs",
            ),
            backpressure_fallbacks: tel.counter(
                "automon_coord_backpressure_fallbacks_total",
                "Lazy-sync growth picks forced onto a backpressured node",
            ),
            cache_hits: tel.counter(
                "automon_coord_decomp_cache_hits_total",
                "Decomposition-cache exact hits (eigendecomposition skipped)",
            ),
            cache_near_hits: tel.counter(
                "automon_coord_decomp_cache_near_hits_total",
                "Decomposition-cache near hits (Lanczos warm-started)",
            ),
            cache_misses: tel.counter(
                "automon_coord_decomp_cache_misses_total",
                "Decomposition-cache misses",
            ),
            cache_evictions: tel.counter(
                "automon_coord_decomp_cache_evictions_total",
                "Decomposition-cache entries evicted",
            ),
            cache_ghost_hits: tel.counter(
                "automon_coord_decomp_cache_ghost_hits_total",
                "Decomposition-cache ghost-list hits (ARC)",
            ),
            cache_adaptation,
            snap_taken: tel.counter(
                "automon_coord_snapshot_taken_total",
                "Durable snapshots captured (including retried deferrals)",
            ),
            snap_deferred: tel.counter(
                "automon_coord_snapshot_deferred_total",
                "Snapshot requests deferred because a sync was in flight",
            ),
            epoch: tel.gauge("automon_coord_epoch", "Constraint epoch in force"),
            radius: tel.gauge(
                "automon_coord_neighborhood_r",
                "Neighborhood radius in force",
            ),
            alive: tel.gauge("automon_coord_alive_nodes", "Non-evicted nodes"),
            tel,
        }
    }
}

/// Violation-resolution state.
enum SyncState {
    /// Waiting for every node's first vector.
    Initializing,
    /// All constraints in force; nothing outstanding.
    Monitoring,
    /// Lazy sync in progress: `set` is the balancing set `S`, `pending`
    /// the node whose vector was requested.
    Lazy {
        set: BTreeSet<NodeId>,
        pending: Option<NodeId>,
    },
    /// Full sync in progress, waiting for `pending`'s vectors.
    Full { pending: BTreeSet<NodeId> },
}

/// The AutoMon coordinator.
///
/// Drive it by feeding every [`NodeMessage`] to [`Coordinator::handle`]
/// and forwarding the returned [`Outbound`] messages to their nodes.
pub struct Coordinator {
    f: Arc<dyn MonitoredFunction>,
    n: usize,
    cfg: MonitorConfig,
    domain: Domain,
    r: f64,
    zone: Option<SafeZone>,
    slack: Vec<Vec<f64>>,
    known_x: Vec<Option<Vec<f64>>>,
    /// Least-recently-contacted order; front = least recent. Intrusive
    /// slot-index list: touch/remove are O(1) (paper §3.5's LRU).
    lru: SlotList,
    state: SyncState,
    stats: CoordinatorStats,
    /// Cached ADCD-E decomposition (constant Hessian ⇒ computed once).
    e_cache: Option<DcDecomposition>,
    /// Decomposition cache for ADCD-X full syncs (`None` = off).
    decomp_cache: Option<SharedDecompCache>,
    /// Key namespace for this coordinator's function in a (possibly
    /// fleet-shared) decomposition cache.
    cache_fn_id: u64,
    /// Nodes that already hold the current curvature (can receive the
    /// matrix-free `NewConstraintsCached`).
    node_has_curvature: Vec<bool>,
    /// Consecutive neighborhood violations without a safe-zone violation.
    consecutive_neighborhood: usize,
    /// Application callback for protocol events.
    observer: Option<Observer>,
    /// Constraint epoch; bumped on every completed full sync. Stamped on
    /// every outgoing message so stale frames are recognizable.
    epoch: Epoch,
    /// Per-node liveness; evicted nodes are `false` until they rejoin.
    alive: Vec<bool>,
    /// Transport backpressure flags (reactor backend): flagged nodes
    /// are deprioritized when growing a lazy-sync balancing set, since
    /// pulling from a node whose outbound queue is jammed adds latency
    /// to the whole resolution. Not journaled — purely transient
    /// transport state, reset to all-clear on restore.
    backpressured: Vec<bool>,
    /// Durability sink (no-op until `set_journal`): every state
    /// transition that a restore must reproduce is recorded here.
    journal: Option<Box<dyn crate::journal::Journal>>,
    /// A snapshot was requested mid-sync and must be retried at the
    /// next quiescent point (see `request_snapshot`).
    snapshot_deferred: bool,
    /// Observability handles (no-op until `set_telemetry`).
    tel: CoordTel,
}

impl Coordinator {
    /// Create a coordinator for `n` nodes monitoring `f`.
    pub fn new(f: Arc<dyn MonitoredFunction>, n: usize, cfg: MonitorConfig) -> Self {
        assert!(n > 0, "Coordinator: need at least one node");
        let d = f.dim();
        let domain = Domain::of(f.as_ref());
        let r = cfg.neighborhood.initial_r();
        let decomp_cache = cfg
            .decomp_cache
            .as_ref()
            .map(|c| SharedDecompCache::from_config(c.clone()));
        let cache_policy = cfg.decomp_cache.as_ref().map(|c| c.policy.name());
        Self {
            f,
            n,
            cfg,
            domain,
            r,
            zone: None,
            slack: vec![vec![0.0; d]; n],
            known_x: vec![None; n],
            lru: SlotList::with_all(n),
            state: SyncState::Initializing,
            stats: CoordinatorStats::default(),
            e_cache: None,
            decomp_cache,
            cache_fn_id: 0,
            node_has_curvature: vec![false; n],
            consecutive_neighborhood: 0,
            observer: None,
            epoch: 0,
            alive: vec![true; n],
            backpressured: vec![false; n],
            journal: None,
            snapshot_deferred: false,
            tel: CoordTel::new(Telemetry::disabled(), cache_policy),
        }
    }

    /// Register a callback invoked on every protocol event (sync,
    /// adaptive growth, faulty constraints). Replaces any previous
    /// observer.
    pub fn set_observer(&mut self, observer: Observer) {
        self.observer = Some(observer);
    }

    /// Install an observability handle. Metrics are registered eagerly
    /// so hot-path updates touch pre-resolved atomics; gauges are primed
    /// with the state in force. The coordinator is driven by a single
    /// loop, so its trace events satisfy the sequential-context contract
    /// of [`automon_obs::trace`].
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        let t = CoordTel::new(tel, self.cfg.decomp_cache.as_ref().map(|c| c.policy.name()));
        t.epoch.set(self.epoch as f64);
        t.radius.set(self.r);
        t.alive.set(self.alive_count() as f64);
        self.tel = t;
    }

    /// Install a durability sink. From now on every state transition a
    /// restore must reproduce — node registrations, slack updates,
    /// epoch bumps, evictions, rejoins, r-doublings — is recorded
    /// through it (DESIGN.md §3.13).
    pub fn set_journal(&mut self, journal: Box<dyn crate::journal::Journal>) {
        self.journal = Some(journal);
    }

    fn journal_node(&mut self, node: NodeId) {
        let t = crate::journal::Transition::Node {
            node,
            x: self.known_x[node].clone(),
            slack: self.slack[node].clone(),
            alive: self.alive[node],
            has_curvature: self.node_has_curvature[node],
        };
        if let Some(j) = &mut self.journal {
            j.record(t);
        }
    }

    fn journal_zone(&mut self) {
        let t = crate::journal::Transition::Zone {
            epoch: self.epoch,
            r: self.r,
            zone: self.zone.clone().map(Box::new),
        };
        if let Some(j) = &mut self.journal {
            j.record(t);
        }
    }

    fn journal_control(&mut self) {
        let t = crate::journal::Transition::Control {
            lru: self.lru.iter().collect(),
            stats: self.stats.clone(),
            consecutive_neighborhood: self.consecutive_neighborhood,
        };
        if let Some(j) = &mut self.journal {
            j.record(t);
        }
    }

    /// Journal the delta a just-handled message (or eviction) produced.
    ///
    /// `pre` is `(epoch, r, lazy_syncs)` captured before the mutation.
    /// An epoch bump means a full sync rewrote every member's slack; a
    /// `lazy_syncs` bump rewrote the balancing set's — both journal all
    /// alive nodes. Otherwise only `touched` changed. The control
    /// record (LRU order, counters) rides along every time.
    fn journal_delta(&mut self, touched: Option<NodeId>, pre: (Epoch, f64, usize)) {
        let (epoch0, r0, lazy0) = pre;
        let full = self.epoch != epoch0;
        if full || self.r != r0 {
            self.journal_zone();
        }
        if full || self.stats.lazy_syncs != lazy0 {
            for i in 0..self.n {
                if self.alive[i] {
                    self.journal_node(i);
                }
            }
            if let Some(t) = touched {
                if !self.alive[t] {
                    self.journal_node(t);
                }
            }
        } else if let Some(t) = touched {
            self.journal_node(t);
        }
        self.journal_control();
    }

    /// Share an external decomposition cache (e.g. across a coordinator
    /// fleet), keying this coordinator's entries under `fn_id`. If the
    /// cache remembers a tuned neighborhood radius for `fn_id` and this
    /// coordinator has not completed a sync yet, the tuned radius is
    /// adopted.
    pub fn set_decomp_cache(&mut self, cache: SharedDecompCache, fn_id: u64) {
        if self.zone.is_none() {
            if let Some(r) = cache.lock().tuned_r(fn_id) {
                if r > 0.0 {
                    self.r = r;
                }
            }
        }
        self.decomp_cache = Some(cache);
        self.cache_fn_id = fn_id;
    }

    /// The decomposition cache in use, if any (shareable via clone).
    pub fn decomp_cache(&self) -> Option<&SharedDecompCache> {
        self.decomp_cache.as_ref()
    }

    fn notify(&mut self, event: CoordinatorEvent) {
        if let Some(obs) = &mut self.observer {
            obs(&event);
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CoordinatorStats {
        &self.stats
    }

    /// The current approximation `f(x0)`, once initialized.
    pub fn current_value(&self) -> Option<f64> {
        self.zone.as_ref().map(|z| z.f0)
    }

    /// The safe zone currently in force.
    pub fn zone(&self) -> Option<&SafeZone> {
        self.zone.as_ref()
    }

    /// The current neighborhood radius `r`.
    pub fn neighborhood_r(&self) -> f64 {
        self.r
    }

    /// The constraint epoch currently in force.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// `true` while `node` is part of the monitored set.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node]
    }

    /// Number of non-evicted nodes.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Flag (or clear) transport backpressure on `node`. Backpressured
    /// nodes are passed over when a lazy sync grows its balancing set,
    /// as long as an unpressured candidate exists; with no flags set the
    /// growth order is plain LRU. Drive this from the reactor
    /// transport's `backpressured_nodes()` between rounds.
    pub fn set_backpressured(&mut self, node: NodeId, on: bool) {
        self.backpressured[node] = on;
    }

    /// `true` while `node` is flagged as backpressured.
    pub fn is_backpressured(&self, node: NodeId) -> bool {
        self.backpressured[node]
    }

    /// `true` while a violation resolution (lazy or full sync) is in
    /// flight — i.e. the coordinator is waiting on node replies.
    pub fn is_resolving(&self) -> bool {
        matches!(self.state, SyncState::Lazy { .. } | SyncState::Full { .. })
    }

    /// The vector pulls the coordinator is still waiting on — what a
    /// lossy transport re-sends after a retransmit timeout, and what a
    /// liveness monitor uses to identify candidate dead nodes.
    pub fn outstanding_requests(&self) -> Vec<Outbound> {
        // The cause derives from the sync state (not from what triggered
        // it) so a re-issued pull is value-identical to the original.
        let pull = |i: NodeId, cause: CommCause| {
            Outbound::new(
                i,
                CoordinatorMessage::RequestLocalVector { epoch: self.epoch },
                cause,
            )
        };
        match &self.state {
            SyncState::Lazy {
                pending: Some(p), ..
            } => vec![pull(*p, CommCause::LazySync)],
            SyncState::Full { pending } => pending
                .iter()
                .copied()
                .map(|i| pull(i, CommCause::FullSync))
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Declare `node` dead and remove it from the monitored set.
    ///
    /// The remaining nodes are re-synced in full so the reference point
    /// and slack are redistributed over the survivors — restoring the
    /// ε-guarantee for the average of the nodes that still exist. A
    /// later message from the node re-admits it (see
    /// [`Coordinator::handle`]).
    ///
    /// Returns the messages driving that recovery sync (empty when the
    /// node was already evicted or no survivors remain).
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn evict(&mut self, node: NodeId) -> Vec<Outbound> {
        assert!(node < self.n, "evict: unknown node {node}");
        if !self.alive[node] {
            return Vec::new();
        }
        let pre = self
            .journal
            .is_some()
            .then_some((self.epoch, self.r, self.stats.lazy_syncs));
        let out = self.evict_inner(node);
        if let Some(pre) = pre {
            self.journal_delta(Some(node), pre);
        }
        out
    }

    fn evict_inner(&mut self, node: NodeId) -> Vec<Outbound> {
        self.alive[node] = false;
        self.known_x[node] = None;
        self.node_has_curvature[node] = false;
        self.lru.remove(node);
        self.stats.evictions += 1;
        self.tel.evictions.inc();
        self.tel.alive.set(self.alive_count() as f64);
        self.tel.tel.event("evict", &[("node", node.into())]);
        self.notify(CoordinatorEvent::NodeEvicted { node });
        if self.alive_count() == 0 {
            self.state = SyncState::Initializing;
            return Vec::new();
        }
        if self.zone.is_none() {
            // Not initialized yet: the survivors may now be complete.
            self.state = SyncState::Initializing;
            if (0..self.n).all(|i| !self.alive[i] || self.known_x[i].is_some()) {
                return self.full_sync();
            }
            return Vec::new();
        }
        // Pull fresh vectors from every survivor, then full-sync.
        self.begin_full_sync(BTreeSet::new())
    }

    /// Re-install the current constraints (and, when the node is holding
    /// up a sync, re-issue the pull) on a node that sent a stale-epoch
    /// frame: it missed a constraint install on a lossy link.
    fn resync_node(&mut self, node: NodeId) -> Vec<Outbound> {
        let Some(zone) = self.zone.clone() else {
            return Vec::new();
        };
        self.stats.resyncs += 1;
        self.tel.resyncs.inc();
        self.node_has_curvature[node] = true;
        let mut out = vec![Outbound::new(
            node,
            CoordinatorMessage::NewConstraints {
                zone,
                slack: self.slack[node].clone(),
                epoch: self.epoch,
            },
            CommCause::Resync,
        )];
        let repull = match &self.state {
            SyncState::Lazy { pending, .. } => *pending == Some(node),
            SyncState::Full { pending } => pending.contains(&node),
            _ => false,
        };
        if repull {
            out.push(Outbound::new(
                node,
                CoordinatorMessage::RequestLocalVector { epoch: self.epoch },
                CommCause::Resync,
            ));
        }
        out
    }

    /// The configured full-sync parallelism policy, for fabrics that
    /// fan deliveries out on the coordinator's behalf.
    pub fn parallelism(&self) -> crate::config::Parallelism {
        self.cfg.parallelism
    }

    /// Override the neighborhood radius (e.g. from offline tuning,
    /// Algorithm 2). Takes effect at the next full sync.
    pub fn set_neighborhood_r(&mut self, r: f64) {
        assert!(r > 0.0, "neighborhood radius must be positive");
        self.r = r;
        // Tuned radii ride along in the decomposition cache so a fleet
        // sharing it also shares the Algorithm-2 result.
        if let Some(cache) = &self.decomp_cache {
            cache.lock().remember_tuned_r(self.cache_fn_id, r);
        }
        if self.journal.is_some() {
            self.journal_zone();
            self.journal_control();
        }
    }

    /// Capture a restorable snapshot of the protocol state.
    ///
    /// Only available while no violation resolution is in flight
    /// (`None` otherwise): a mid-sync snapshot would strand the pending
    /// pulls. Pair with [`Coordinator::restore`] and
    /// [`Coordinator::resync_messages`] for coordinator failover.
    pub fn snapshot(&self) -> Option<CoordinatorSnapshot> {
        match self.state {
            SyncState::Monitoring | SyncState::Initializing => Some(CoordinatorSnapshot {
                n: self.n,
                r: self.r,
                zone: self.zone.clone(),
                slack: self.slack.clone(),
                known_x: self.known_x.clone(),
                lru: self.lru.iter().collect(),
                stats: self.stats.clone(),
                consecutive_neighborhood: self.consecutive_neighborhood,
                epoch: self.epoch,
                alive: self.alive.clone(),
                node_has_curvature: self.node_has_curvature.clone(),
            }),
            _ => None,
        }
    }

    /// [`Coordinator::snapshot`] with deferral tracking: a request that
    /// lands mid-sync is remembered and retried via
    /// [`Coordinator::take_deferred_snapshot`] at the next quiescent
    /// point, instead of being silently skipped. Counted in
    /// `automon_coord_snapshot_{taken,deferred}_total`.
    pub fn request_snapshot(&mut self) -> Option<CoordinatorSnapshot> {
        match self.snapshot() {
            Some(s) => {
                self.snapshot_deferred = false;
                self.tel.snap_taken.inc();
                Some(s)
            }
            None => {
                self.snapshot_deferred = true;
                self.tel.snap_deferred.inc();
                None
            }
        }
    }

    /// Retry a deferred snapshot request. `Some` only when a request
    /// was deferred and the coordinator is now quiescent.
    pub fn take_deferred_snapshot(&mut self) -> Option<CoordinatorSnapshot> {
        if !self.snapshot_deferred {
            return None;
        }
        let snap = self.snapshot()?;
        self.snapshot_deferred = false;
        self.tel.snap_taken.inc();
        Some(snap)
    }

    /// `true` while a deferred snapshot request is outstanding.
    pub fn snapshot_pending(&self) -> bool {
        self.snapshot_deferred
    }

    /// Start the post-recovery resynchronization: pull fresh vectors
    /// from every alive node, then full-sync the fleet — the restored
    /// reference point may be arbitrarily stale, and the sync also
    /// re-opens a fresh epoch so anything in flight from before the
    /// crash is recognizably stale.
    ///
    /// Empty before initialization completes (no constraints exist to
    /// rebuild; registration traffic converges on its own — and nodes
    /// that never registered cannot answer a pull yet).
    pub fn begin_recovery_sync(&mut self) -> Vec<Outbound> {
        if self.zone.is_some() && self.alive_count() > 0 {
            self.begin_full_sync(BTreeSet::new())
        } else {
            Vec::new()
        }
    }

    /// Rebuild a coordinator from a snapshot.
    ///
    /// The function and configuration are supplied by the caller (they
    /// are code, not state) and must match the snapshotting process's.
    ///
    /// # Panics
    /// Panics when the function dimension disagrees with the snapshot.
    pub fn restore(
        f: Arc<dyn MonitoredFunction>,
        cfg: MonitorConfig,
        snap: CoordinatorSnapshot,
    ) -> Self {
        let d = f.dim();
        assert!(
            snap.slack.iter().all(|s| s.len() == d),
            "restore: snapshot dimension mismatch"
        );
        let alive = if snap.alive.len() == snap.n {
            snap.alive
        } else {
            // Older snapshot without liveness: everyone is alive.
            vec![true; snap.n]
        };
        let node_has_curvature = if snap.node_has_curvature.len() == snap.n {
            snap.node_has_curvature
        } else {
            // Older snapshot: conservative — the first post-restore
            // sync re-ships curvature to everyone.
            vec![false; snap.n]
        };
        let complete = snap
            .known_x
            .iter()
            .zip(&alive)
            .all(|(x, &a)| !a || x.is_some());
        let state = if complete && snap.zone.is_some() {
            SyncState::Monitoring
        } else {
            SyncState::Initializing
        };
        // The domain is code-derived, exactly as in `new`.
        let domain = Domain::of(f.as_ref());
        let decomp_cache = cfg
            .decomp_cache
            .as_ref()
            .map(|c| SharedDecompCache::from_config(c.clone()));
        let cache_policy = cfg.decomp_cache.as_ref().map(|c| c.policy.name());
        Self {
            f,
            n: snap.n,
            cfg,
            domain,
            r: snap.r,
            zone: snap.zone,
            slack: snap.slack,
            known_x: snap.known_x,
            lru: SlotList::from_order(snap.n, &snap.lru),
            state,
            stats: snap.stats,
            e_cache: None,
            decomp_cache,
            cache_fn_id: 0,
            node_has_curvature,
            consecutive_neighborhood: snap.consecutive_neighborhood,
            observer: None,
            epoch: snap.epoch,
            backpressured: vec![false; alive.len()],
            alive,
            journal: None,
            snapshot_deferred: false,
            tel: CoordTel::new(Telemetry::disabled(), cache_policy),
        }
    }

    /// Messages that re-install the current constraints on every node —
    /// what a restored (or restarted) coordinator broadcasts so nodes
    /// converge back to a known state.
    ///
    /// Empty when no constraints exist yet.
    pub fn resync_messages(&self) -> Vec<Outbound> {
        let Some(zone) = &self.zone else {
            return Vec::new();
        };
        (0..self.n)
            .filter(|&i| self.alive[i])
            .map(|i| {
                Outbound::new(
                    i,
                    CoordinatorMessage::NewConstraints {
                        zone: zone.clone(),
                        slack: self.slack[i].clone(),
                        epoch: self.epoch,
                    },
                    CommCause::Resync,
                )
            })
            .collect()
    }

    /// Process one node message; returns the coordinator's replies.
    ///
    /// Self-healing behavior on top of the paper's Algorithm 1:
    ///
    /// * a frame stamped with an epoch older than the constraints in
    ///   force is **discarded** (it predates a re-sync the node missed)
    ///   and answered with a fresh constraint install;
    /// * an `Uninitialized` report from an already-initialized node is a
    ///   **re-registration** (the node lost its state, e.g. a process
    ///   restart) and triggers a full sync from scratch;
    /// * any message from an evicted node **re-admits** it; the whole
    ///   group is then full-synced so the rejoining node gets fresh
    ///   constraints and the slack invariant is re-established.
    pub fn handle(&mut self, msg: NodeMessage) -> Vec<Outbound> {
        self.handle_with_context(msg, TraceCtx::NONE)
    }

    /// [`Coordinator::handle`] with wire-propagated trace context.
    ///
    /// Opens a coordinator-side `handle` span parented on `ctx.span` —
    /// the node-side span that produced the frame, carried in its
    /// header — and stamps the new span on every reply, so downstream
    /// frames propagate it back out and the whole exchange forms one
    /// causal tree. With telemetry disabled this is exactly `handle`
    /// (one branch, no allocation).
    pub fn handle_with_context(&mut self, msg: NodeMessage, ctx: TraceCtx) -> Vec<Outbound> {
        let span = self.tel.tel.span_begin(
            "handle",
            ctx.span,
            &[("node", msg.sender().into()), ("epoch", msg.epoch().into())],
        );
        let sender = msg.sender();
        let pre = self
            .journal
            .is_some()
            .then_some((self.epoch, self.r, self.stats.lazy_syncs));
        let mut out = self.handle_inner(msg);
        if let Some(pre) = pre {
            self.journal_delta(Some(sender), pre);
        }
        if span.is_some() {
            for o in &mut out {
                o.span = span;
            }
            self.tel.tel.span_end(span, &[("replies", out.len().into())]);
        }
        out
    }

    fn handle_inner(&mut self, msg: NodeMessage) -> Vec<Outbound> {
        let sender = msg.sender();
        assert!(sender < self.n, "message from unknown node {sender}");
        let epoch = msg.epoch();
        let (vector, violation) = match msg {
            NodeMessage::Violation {
                kind, local_vector, ..
            } => (local_vector, Some(kind)),
            NodeMessage::LocalVector { vector, .. } => (vector, None),
        };
        let rejoining = !self.alive[sender];
        if rejoining {
            self.alive[sender] = true;
            self.node_has_curvature[sender] = false;
            self.stats.rejoins += 1;
            self.tel.rejoins.inc();
            self.tel.alive.set(self.alive_count() as f64);
            self.tel.tel.event("rejoin", &[("node", sender.into())]);
            self.notify(CoordinatorEvent::NodeRejoined { node: sender });
        } else if epoch < self.epoch && violation != Some(ViolationKind::Uninitialized) {
            // Stale frame: the node is monitoring under superseded
            // constraints (a full-sync install got lost or delayed).
            // Its payload must not be mixed into the current sync;
            // re-install the constraints in force instead.
            self.stats.stale_discards += 1;
            self.tel.stale_discards.inc();
            return self.resync_node(sender);
        }
        if violation == Some(ViolationKind::Uninitialized) {
            // An uninitialized node holds no zone and no cached
            // curvature — whatever we knew belonged to a previous
            // incarnation. Every later install must carry the full
            // payload or the node would re-register forever.
            self.node_has_curvature[sender] = false;
        }
        self.known_x[sender] = Some(vector);
        self.touch_lru(sender);
        if let Some(kind) = violation {
            self.record_violation(kind);
            if kind == ViolationKind::FaultyConstraints {
                self.notify(CoordinatorEvent::FaultyConstraints { node: sender });
            }
        }
        if rejoining && self.zone.is_some() {
            // Resync from scratch, newcomer included: fresh vectors from
            // every survivor, then a full sync that redistributes slack
            // over the enlarged group.
            return self.begin_full_sync([sender].into_iter().collect());
        }

        match std::mem::replace(&mut self.state, SyncState::Monitoring) {
            SyncState::Initializing => {
                let complete = (0..self.n).all(|i| !self.alive[i] || self.known_x[i].is_some());
                if complete {
                    self.full_sync()
                } else {
                    self.state = SyncState::Initializing;
                    Vec::new()
                }
            }
            SyncState::Monitoring => {
                // A LocalVector reply can straggle in after its sync was
                // resolved (e.g. a lazy sync satisfied by another node's
                // violation report); absorb it as a free refresh.
                let Some(kind) = violation else {
                    return Vec::new();
                };
                if kind == ViolationKind::Uninitialized {
                    // Re-registration: the node lost its constraints.
                    self.stats.resyncs += 1;
                    self.tel.resyncs.inc();
                    return self.begin_full_sync([sender].into_iter().collect());
                }
                let lazy_applicable = self.cfg.enable_lazy_sync
                    && self.cfg.enable_slack
                    && kind != ViolationKind::FaultyConstraints
                    && self.alive_count() > 1;
                if !lazy_applicable {
                    return self.begin_full_sync([sender].into_iter().collect());
                }
                let mut set = BTreeSet::new();
                set.insert(sender);
                self.continue_lazy(set)
            }
            SyncState::Lazy { mut set, pending } => {
                set.insert(sender);
                if matches!(
                    violation,
                    Some(ViolationKind::FaultyConstraints) | Some(ViolationKind::Uninitialized)
                ) {
                    return self.begin_full_sync(set);
                }
                match pending {
                    Some(p) if p != sender => {
                        // Still waiting for p; keep state.
                        self.state = SyncState::Lazy {
                            set,
                            pending: Some(p),
                        };
                        Vec::new()
                    }
                    _ => self.continue_lazy(set),
                }
            }
            SyncState::Full { mut pending } => {
                pending.remove(&sender);
                if pending.is_empty() {
                    self.full_sync()
                } else {
                    self.state = SyncState::Full { pending };
                    Vec::new()
                }
            }
        }
    }

    fn record_violation(&mut self, kind: ViolationKind) {
        match kind {
            ViolationKind::Neighborhood => {
                self.stats.neighborhood_violations += 1;
                self.tel.viol_neighborhood.inc();
                self.consecutive_neighborhood += 1;
                // Adaptive growth heuristic (paper §3.6): after
                // `factor · n` consecutive neighborhood violations with no
                // intervening safe-zone violation, double r.
                if self.cfg.neighborhood.is_adaptive()
                    && self.consecutive_neighborhood >= self.cfg.adaptive_r_factor * self.n
                {
                    self.r *= 2.0;
                    self.stats.r_doublings += 1;
                    self.tel.r_doublings.inc();
                    self.tel.radius.set(self.r);
                    self.tel.tel.event("r_doubled", &[("r", self.r.into())]);
                    self.consecutive_neighborhood = 0;
                    self.notify(CoordinatorEvent::NeighborhoodDoubled { r: self.r });
                }
            }
            ViolationKind::SafeZone => {
                self.stats.safezone_violations += 1;
                self.tel.viol_safezone.inc();
                self.consecutive_neighborhood = 0;
            }
            ViolationKind::FaultyConstraints => {
                self.stats.faulty_reports += 1;
                self.tel.viol_faulty.inc();
                self.consecutive_neighborhood = 0;
                // The reporting node is recorded by the caller; id is
                // threaded through `handle`, so notify there.
            }
            ViolationKind::Uninitialized => {}
        }
    }

    fn touch_lru(&mut self, node: NodeId) {
        self.lru.touch(node);
    }

    /// Try to resolve with the current balancing set, growing it via the
    /// LRU strategy; escalate to full sync past `n/2` (paper §3.5).
    fn continue_lazy(&mut self, set: BTreeSet<NodeId>) -> Vec<Outbound> {
        if self.try_balance(&set) {
            let b = self.balance_point(&set);
            let mut out = Vec::with_capacity(set.len());
            for &i in &set {
                let xi = self.known_x[i].as_ref().expect("vector known for set member");
                self.slack[i] = vector::sub(&b, xi);
                out.push(Outbound::new(
                    i,
                    CoordinatorMessage::SlackUpdate {
                        slack: self.slack[i].clone(),
                        epoch: self.epoch,
                    },
                    CommCause::LazySync,
                ));
            }
            self.stats.lazy_syncs += 1;
            self.tel.lazy_syncs.inc();
            self.tel.slack_updates.add(set.len() as u64);
            self.tel
                .tel
                .event("lazy_sync", &[("nodes", set.len().into())]);
            self.notify(CoordinatorEvent::LazySync { nodes: set.len() });
            self.state = SyncState::Monitoring;
            return out;
        }
        if 2 * set.len() > self.alive_count() {
            return self.begin_full_sync(set);
        }
        // Grow S with the least-recently-used node outside it (the LRU
        // order only ever contains alive nodes). Nodes under transport
        // backpressure are passed over when any unpressured candidate
        // exists — identical to plain LRU when no flags are set.
        let next = self
            .lru
            .iter()
            .find(|i| !set.contains(i) && !self.backpressured[*i])
            .or_else(|| self.lru.iter().find(|i| !set.contains(i)));
        if let Some(p) = next {
            if self.backpressured[p] {
                self.tel.backpressure_fallbacks.inc();
            }
        }
        match next {
            Some(p) => {
                self.touch_lru(p);
                self.state = SyncState::Lazy {
                    set,
                    pending: Some(p),
                };
                vec![Outbound::new(
                    p,
                    CoordinatorMessage::RequestLocalVector { epoch: self.epoch },
                    CommCause::LazySync,
                )]
            }
            None => self.begin_full_sync(set),
        }
    }

    /// Average of the slack-adjusted vectors of the balancing set.
    fn balance_point(&self, set: &BTreeSet<NodeId>) -> Vec<f64> {
        let adjusted: Vec<Vec<f64>> = set
            .iter()
            .map(|&i| {
                let xi = self.known_x[i].as_ref().expect("vector known");
                vector::add(xi, &self.slack[i])
            })
            .collect();
        vector::mean(&adjusted).expect("non-empty balancing set")
    }

    /// `true` when the balance point satisfies all local constraints.
    fn try_balance(&self, set: &BTreeSet<NodeId>) -> bool {
        let Some(zone) = &self.zone else {
            return false;
        };
        let b = self.balance_point(set);
        zone.contains(self.f.as_ref(), &b)
    }

    /// Request vectors from every alive node not in `have`, or sync
    /// immediately if everything is known.
    fn begin_full_sync(&mut self, have: BTreeSet<NodeId>) -> Vec<Outbound> {
        let pending: BTreeSet<NodeId> = (0..self.n)
            .filter(|&i| self.alive[i] && !have.contains(&i))
            .collect();
        if pending.is_empty() {
            return self.full_sync();
        }
        let out = pending
            .iter()
            .map(|&i| {
                Outbound::new(
                    i,
                    CoordinatorMessage::RequestLocalVector { epoch: self.epoch },
                    CommCause::FullSync,
                )
            })
            .collect();
        self.state = SyncState::Full { pending };
        out
    }

    /// ADCD-X decomposition for a full sync, consulting the
    /// decomposition cache when one is configured.
    ///
    /// An exact hit (stored inputs bitwise equal) replays the cached
    /// decomposition — bit-identical to recomputing, since `decompose`
    /// is deterministic — and skips the eigendecomposition entirely. A
    /// near hit (same quantized cell, warm starts enabled) seeds the
    /// Lanczos streams with the cached Ritz vectors. Everything else
    /// decomposes cold and populates the cache.
    fn decompose_x_cached(&mut self, x0: &[f64], b: &NeighborhoodBox) -> DcDecomposition {
        let Some(shared) = self.decomp_cache.clone() else {
            return adcd::decompose_observed(self.f.as_ref(), x0, Some(b), &self.cfg, &self.tel.tel);
        };
        let lookup = shared.lock().lookup(self.cache_fn_id, x0, self.r, b);
        let seeds = match lookup {
            CacheLookup::Exact(dec) => {
                self.tel.cache_hits.inc();
                self.tel
                    .tel
                    .event("decomp_cache", &[("outcome", "hit".into())]);
                return dec;
            }
            CacheLookup::Near(s) => {
                self.tel.cache_near_hits.inc();
                self.tel
                    .tel
                    .event("decomp_cache", &[("outcome", "near".into())]);
                Some(s)
            }
            CacheLookup::Miss => {
                self.tel.cache_misses.inc();
                None
            }
        };
        let (dec, ritz) = adcd::decompose_observed_with_seeds(
            self.f.as_ref(),
            x0,
            Some(b),
            &self.cfg,
            seeds.as_ref(),
            &self.tel.tel,
        );
        let mut cache = shared.lock();
        let report = cache.insert(self.cache_fn_id, x0, self.r, b.clone(), dec.clone(), ritz);
        if report.evicted > 0 {
            self.tel.cache_evictions.add(report.evicted as u64);
        }
        if report.ghost_hit {
            self.tel.cache_ghost_hits.inc();
        }
        if let Some(g) = &self.tel.cache_adaptation {
            g.set(cache.adaptation());
        }
        dec
    }

    /// Paper Algorithm 1, `CoordinatorFullSync`: recompute `x0`,
    /// thresholds, decomposition, safe zone, and slack; broadcast.
    fn full_sync(&mut self) -> Vec<Outbound> {
        let members: Vec<(NodeId, Vec<f64>)> = self
            .known_x
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.alive[i])
            .map(|(i, x)| (i, x.clone().expect("full sync requires all alive vectors")))
            .collect();
        let xs: Vec<Vec<f64>> = members.iter().map(|(_, x)| x.clone()).collect();
        let x0 = vector::mean(&xs).expect("at least one alive node");
        let (f0, grad0) = self.f.eval_grad(&x0);
        let (l, u) = self.thresholds(f0);

        let zone = if self.cfg.disable_adcd {
            SafeZone {
                x0: x0.clone(),
                f0,
                grad0,
                l,
                u,
                dc: DcKind::AdmissibleOnly,
                curvature: Curvature::Scalar(0.0),
                neighborhood: None,
            }
        } else {
            let use_e = self
                .cfg
                .adcd_override
                .map(|k| k == AdcdKind::E)
                .unwrap_or_else(|| self.f.has_constant_hessian());
            if use_e {
                // Constant Hessian: decomposition computed once, then
                // cached (paper §4.4: "eigendecomposition is done only
                // once at initialization").
                if self.e_cache.is_none() {
                    self.e_cache = Some(adcd::decompose_observed(
                        self.f.as_ref(),
                        &x0,
                        None,
                        &self.cfg,
                        &self.tel.tel,
                    ));
                }
                let dec = self.e_cache.as_ref().expect("just cached");
                SafeZone {
                    x0: x0.clone(),
                    f0,
                    grad0,
                    l,
                    u,
                    dc: dec.dc,
                    curvature: dec.curvature.clone(),
                    neighborhood: None,
                }
            } else {
                let b = self.domain.neighborhood(&x0, self.r);
                let dec = self.decompose_x_cached(&x0, &b);
                SafeZone {
                    x0: x0.clone(),
                    f0,
                    grad0,
                    l,
                    u,
                    dc: dec.dc,
                    curvature: dec.curvature.clone(),
                    neighborhood: Some(b),
                }
            }
        };

        // A node that already holds this exact curvature gets the
        // matrix-free form — for ADCD-E the O(d²) penalty never crosses
        // the wire after the first sync (paper §4.4).
        let curvature_unchanged = self
            .zone
            .as_ref()
            .is_some_and(|old| old.curvature == zone.curvature && old.dc == zone.dc);
        // A completed full sync opens a new epoch; the installs below
        // carry it, and anything still in flight from before is stale.
        self.epoch += 1;
        let mut out = Vec::with_capacity(members.len());
        for (i, xi) in &members {
            let i = *i;
            self.slack[i] = if self.cfg.enable_slack {
                vector::sub(&x0, xi)
            } else {
                vec![0.0; x0.len()]
            };
            let msg = if curvature_unchanged && self.node_has_curvature[i] {
                CoordinatorMessage::NewConstraintsCached {
                    update: crate::messages::ZoneUpdate {
                        x0: zone.x0.clone(),
                        f0: zone.f0,
                        grad0: zone.grad0.clone(),
                        l: zone.l,
                        u: zone.u,
                        dc: zone.dc,
                        neighborhood: zone.neighborhood.clone(),
                    },
                    slack: self.slack[i].clone(),
                    epoch: self.epoch,
                }
            } else {
                self.node_has_curvature[i] = true;
                CoordinatorMessage::NewConstraints {
                    zone: zone.clone(),
                    slack: self.slack[i].clone(),
                    epoch: self.epoch,
                }
            };
            out.push(Outbound::new(i, msg, CommCause::FullSync));
        }
        self.tel.full_syncs.inc();
        self.tel.epoch.set(self.epoch as f64);
        self.tel.tel.event(
            "full_sync",
            &[
                ("epoch", self.epoch.into()),
                ("value", zone.f0.into()),
                ("lower", zone.l.into()),
                ("upper", zone.u.into()),
                ("members", members.len().into()),
            ],
        );
        self.notify(CoordinatorEvent::FullSync {
            value: zone.f0,
            lower: zone.l,
            upper: zone.u,
        });
        self.zone = Some(zone);
        self.stats.full_syncs += 1;
        // Note: the consecutive-neighborhood-violation counter (paper
        // §3.6) deliberately survives full syncs — only an intervening
        // safe-zone violation resets it, so a too-small `r` that keeps
        // forcing syncs still triggers adaptive growth.
        self.state = SyncState::Monitoring;
        out
    }

    /// Thresholds from `f(x0)` (paper §2).
    fn thresholds(&self, f0: f64) -> (f64, f64) {
        match self.cfg.approximation {
            ApproximationKind::Additive => (f0 - self.cfg.epsilon, f0 + self.cfg.epsilon),
            ApproximationKind::Multiplicative => {
                let a = (1.0 - self.cfg.epsilon) * f0;
                let b = (1.0 + self.cfg.epsilon) * f0;
                (a.min(b), a.max(b))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Node;
    use automon_autodiff::{AutoDiffFn, Scalar, ScalarFn};

    struct Sum2;
    impl ScalarFn for Sum2 {
        fn dim(&self) -> usize {
            2
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            x[0] + x[1]
        }
    }

    fn setup(n: usize, cfg: MonitorConfig) -> (Coordinator, Vec<Node>) {
        let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(Sum2));
        let coord = Coordinator::new(f.clone(), n, cfg);
        let nodes = (0..n).map(|i| Node::new(i, f.clone())).collect();
        (coord, nodes)
    }

    /// Deliver `first` and every cascading reply FIFO; returns the number
    /// of messages exchanged.
    fn route(coord: &mut Coordinator, nodes: &mut [Node], first: NodeMessage) -> usize {
        let mut inbox = std::collections::VecDeque::from([first]);
        let mut count = 0usize;
        while let Some(m) = inbox.pop_front() {
            count += 1;
            for out in coord.handle(m) {
                count += 1;
                if let Some(reply) = nodes[out.to].handle(out.msg) {
                    inbox.push_back(reply);
                }
            }
        }
        count
    }

    #[test]
    fn initializes_after_all_register() {
        let (mut coord, mut nodes) = setup(3, MonitorConfig::builder(0.5).build());
        for i in 0..3 {
            let m = nodes[i].update_data(vec![i as f64, 0.0]).unwrap();
            route(&mut coord, &mut nodes, m);
        }
        // After three registrations the coordinator full-synced.
        assert_eq!(coord.stats().full_syncs, 1);
        // x0 = mean([0,0],[1,0],[2,0]) = [1, 0]; f(x0) = 1.
        assert_eq!(coord.current_value(), Some(1.0));
        assert_eq!(nodes[2].current_value(), Some(1.0));
    }

    #[test]
    fn lazy_sync_resolves_opposite_drifts() {
        // Linear function: safe zone contains the whole slab
        // L ≤ x₀+x₁ ≤ U. Two nodes drift in opposite directions; their
        // average stays at the reference, so lazy sync must resolve
        // without a second full sync.
        let (mut coord, mut nodes) = setup(2, MonitorConfig::builder(0.4).build());
        for i in 0..nodes.len() {
            if let Some(m) = nodes[i].update_data(vec![0.0, 0.0]) {
                for out in coord.handle(m) {
                    let _ = nodes[out.to].handle(out.msg);
                }
            }
        }
        assert_eq!(coord.stats().full_syncs, 1);

        // Both nodes drift by ±1 in x₀ (each violating ε = 0.4); the
        // drifts cancel, so a single lazy sync must resolve them.
        let m0 = nodes[0].update_data(vec![1.0, 0.0]).expect("violation");
        let m1 = nodes[1].update_data(vec![-1.0, 0.0]).expect("violation");
        // Deliver both reports through one FIFO queue, as a transport would.
        let mut inbox = std::collections::VecDeque::from([m0, m1]);
        while let Some(m) = inbox.pop_front() {
            for out in coord.handle(m) {
                if let Some(reply) = nodes[out.to].handle(out.msg) {
                    inbox.push_back(reply);
                }
            }
        }
        assert_eq!(coord.stats().lazy_syncs, 1, "{:?}", coord.stats());
        assert_eq!(coord.stats().full_syncs, 1);
        // Both nodes keep monitoring silently at the balanced point.
        assert!(nodes[0].update_data(vec![1.0, 0.0]).is_none());
        assert!(nodes[1].update_data(vec![-1.0, 0.0]).is_none());
    }

    #[test]
    fn full_sync_when_lazy_disabled() {
        let cfg = MonitorConfig::builder(0.4).without_lazy_sync().build();
        let (mut coord, mut nodes) = setup(2, cfg);
        let init = |coord: &mut Coordinator, nodes: &mut Vec<Node>| {
            for i in 0..2 {
                if let Some(m) = nodes[i].update_data(vec![0.0, 0.0]) {
                    for out in coord.handle(m) {
                        let _ = nodes[out.to].handle(out.msg);
                    }
                }
            }
        };
        init(&mut coord, &mut nodes);
        assert_eq!(coord.stats().full_syncs, 1);

        let m = nodes[0].update_data(vec![5.0, 0.0]).expect("violation");
        let mut inbox = vec![m];
        while let Some(m) = inbox.pop() {
            for out in coord.handle(m) {
                if let Some(reply) = nodes[out.to].handle(out.msg) {
                    inbox.push(reply);
                }
            }
        }
        assert_eq!(coord.stats().full_syncs, 2);
        assert_eq!(coord.stats().lazy_syncs, 0);
        // New reference: mean([5,0],[0,0]) = [2.5, 0] → f = 2.5.
        assert_eq!(coord.current_value(), Some(2.5));
    }

    #[test]
    fn thresholds_additive_and_multiplicative() {
        let (coord, _) = setup(1, MonitorConfig::builder(0.1).build());
        assert_eq!(coord.thresholds(2.0), (1.9, 2.1));
        let (coord, _) = setup(1, MonitorConfig::builder(0.1).multiplicative().build());
        let (l, u) = coord.thresholds(2.0);
        assert!((l - 1.8).abs() < 1e-12);
        assert!((u - 2.2).abs() < 1e-12);
        // Negative f(x0): bounds stay ordered.
        let (l, u) = coord.thresholds(-2.0);
        assert!(l < u);
        assert!((l + 2.2).abs() < 1e-12);
    }

    #[test]
    fn set_neighborhood_r_applies() {
        let (mut coord, _) = setup(2, MonitorConfig::builder(0.1).build());
        coord.set_neighborhood_r(0.25);
        assert_eq!(coord.neighborhood_r(), 0.25);
    }

    /// Register all nodes at the given vectors and run the initial sync.
    fn init(coord: &mut Coordinator, nodes: &mut [Node], xs: &[Vec<f64>]) {
        for (i, x) in xs.iter().enumerate() {
            if let Some(m) = nodes[i].update_data(x.clone()) {
                route(coord, nodes, m);
            }
        }
    }

    #[test]
    fn epoch_bumps_on_full_sync_only() {
        let (mut coord, mut nodes) = setup(2, MonitorConfig::builder(0.4).build());
        assert_eq!(coord.epoch(), 0);
        init(&mut coord, &mut nodes, &[vec![0.0, 0.0], vec![0.0, 0.0]]);
        assert_eq!(coord.epoch(), 1);
        assert_eq!(nodes[0].epoch(), 1);

        // Opposite drifts resolve lazily: epoch must not move.
        let m0 = nodes[0].update_data(vec![1.0, 0.0]).expect("violation");
        let m1 = nodes[1].update_data(vec![-1.0, 0.0]).expect("violation");
        let mut inbox = std::collections::VecDeque::from([m0, m1]);
        while let Some(m) = inbox.pop_front() {
            for out in coord.handle(m) {
                if let Some(reply) = nodes[out.to].handle(out.msg) {
                    inbox.push_back(reply);
                }
            }
        }
        assert_eq!(coord.stats().lazy_syncs, 1);
        assert_eq!(coord.epoch(), 1);

        // A one-sided drift forces a full sync: epoch advances.
        let m = nodes[0].update_data(vec![9.0, 0.0]).expect("violation");
        route(&mut coord, &mut nodes, m);
        assert_eq!(coord.stats().full_syncs, 2);
        assert_eq!(coord.epoch(), 2);
        assert_eq!(nodes[1].epoch(), 2);
    }

    #[test]
    fn stale_frame_discarded_and_resynced() {
        let (mut coord, mut nodes) = setup(2, MonitorConfig::builder(0.4).build());
        init(&mut coord, &mut nodes, &[vec![0.0, 0.0], vec![0.0, 0.0]]);
        assert_eq!(coord.epoch(), 1);

        // A frame from a superseded epoch must not enter the sync logic.
        let stale = NodeMessage::Violation {
            node: 1,
            kind: ViolationKind::SafeZone,
            local_vector: vec![50.0, 0.0],
            epoch: 0,
        };
        let out = coord.handle(stale);
        assert_eq!(coord.stats().stale_discards, 1);
        assert_eq!(coord.stats().resyncs, 1);
        // The reply re-installs the constraints in force.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, 1);
        assert!(matches!(
            out[0].msg,
            CoordinatorMessage::NewConstraints { epoch: 1, .. }
        ));
        // The bogus vector was not absorbed.
        assert_eq!(coord.current_value(), Some(0.0));
        assert_eq!(coord.stats().full_syncs, 1);
    }

    #[test]
    fn eviction_redistributes_over_survivors() {
        let (mut coord, mut nodes) = setup(3, MonitorConfig::builder(0.5).build());
        init(
            &mut coord,
            &mut nodes,
            &[vec![0.0, 0.0], vec![3.0, 0.0], vec![6.0, 0.0]],
        );
        // x0 = mean = [3, 0] → f = 3.
        assert_eq!(coord.current_value(), Some(3.0));
        assert_eq!(coord.alive_count(), 3);

        // Node 2 dies; the survivors re-sync and the reference moves to
        // the mean over {0, 1}.
        let mut inbox: std::collections::VecDeque<NodeMessage> = Default::default();
        for out in coord.evict(2) {
            if let Some(reply) = nodes[out.to].handle(out.msg) {
                inbox.push_back(reply);
            }
        }
        while let Some(m) = inbox.pop_front() {
            for out in coord.handle(m) {
                if let Some(reply) = nodes[out.to].handle(out.msg) {
                    inbox.push_back(reply);
                }
            }
        }
        assert_eq!(coord.alive_count(), 2);
        assert_eq!(coord.stats().evictions, 1);
        assert_eq!(coord.current_value(), Some(1.5));
        // Evicting again is a no-op.
        assert!(coord.evict(2).is_empty());
        assert_eq!(coord.stats().evictions, 1);

        // The dead node speaks again (fresh process: epoch 0,
        // Uninitialized): it rejoins and the reference includes it.
        nodes[2] = Node::new(2, Arc::new(AutoDiffFn::new(Sum2)));
        let m = nodes[2].update_data(vec![6.0, 0.0]).expect("registers");
        route(&mut coord, &mut nodes, m);
        assert_eq!(coord.stats().rejoins, 1);
        assert_eq!(coord.alive_count(), 3);
        assert_eq!(coord.current_value(), Some(3.0));
        assert_eq!(nodes[2].epoch(), coord.epoch());
        // The group keeps monitoring normally afterwards.
        assert!(nodes[2].update_data(vec![6.1, 0.0]).is_none());
    }

    #[test]
    fn restarted_node_receives_full_constraints() {
        // A node process that restarts without being evicted keeps its
        // `alive` flag, but its new incarnation has no curvature cache:
        // the resync must carry full constraints, or the node would
        // re-register forever.
        let (mut coord, mut nodes) = setup(2, MonitorConfig::builder(0.4).build());
        let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(Sum2));
        init(&mut coord, &mut nodes, &[vec![0.5, 0.0], vec![0.0, 0.5]]);
        assert_eq!(coord.stats().full_syncs, 1);

        // Node 1 comes back empty and re-registers from its data stream.
        nodes[1] = Node::new(1, f);
        let m = nodes[1].update_data(vec![0.0, 0.5]).expect("re-register");
        assert!(matches!(
            m,
            NodeMessage::Violation {
                kind: ViolationKind::Uninitialized,
                ..
            }
        ));
        route(&mut coord, &mut nodes, m);

        // The resync completed: node 1 monitors again under the new
        // epoch, with a zone installed (i.e. it got the full payload).
        assert_eq!(coord.stats().resyncs, 1);
        assert_eq!(coord.stats().full_syncs, 2);
        assert!(nodes[1].zone().is_some(), "constraints never landed");
        assert!(!nodes[1].is_pending(), "node stuck re-registering");
        assert_eq!(nodes[1].epoch(), coord.epoch());
    }

    #[test]
    fn outstanding_requests_reissue_pending_pulls() {
        let cfg = MonitorConfig::builder(0.4).without_lazy_sync().build();
        let (mut coord, mut nodes) = setup(3, cfg);
        init(
            &mut coord,
            &mut nodes,
            &[vec![0.0, 0.0], vec![0.0, 0.0], vec![0.0, 0.0]],
        );
        assert!(!coord.is_resolving());
        assert!(coord.outstanding_requests().is_empty());

        // A violation starts a full sync: two pulls go out and stay
        // outstanding until answered.
        let m = nodes[0].update_data(vec![5.0, 0.0]).expect("violation");
        let out = coord.handle(m);
        assert_eq!(out.len(), 2);
        assert!(coord.is_resolving());
        let again = coord.outstanding_requests();
        assert_eq!(again.len(), 2);
        // The re-issued pulls are byte-identical to the originals.
        assert_eq!(out, again);
    }
}
