//! A battery of distinct functions checked against finite differences
//! and closed forms — the AD engine's acceptance suite. Each case
//! exercises a different composition of primitives (the failure modes of
//! tape-based AD are op-specific, so variety beats repetition).

use automon_autodiff::{finite_diff, ops, AutoDiffFn, Scalar, ScalarFn};

/// Check gradient and Hessian of `f` against finite differences at `x`.
fn check<F: ScalarFn>(f: F, x: &[f64], tol: f64) {
    let ad = AutoDiffFn::new(f);
    let (v, g) = ad.grad(x);
    assert!(v.is_finite());
    let g_fd = finite_diff::gradient(|y| ad.eval(y), x, 1e-6);
    for (i, (a, b)) in g.iter().zip(&g_fd).enumerate() {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "grad[{i}]: {a} vs {b}"
        );
    }
    let h = ad.hessian(x);
    assert!(h.is_symmetric(1e-10));
    let h_fd = finite_diff::hessian(|y| ad.eval(y), x, 1e-4);
    assert!(
        h.approx_eq(&h_fd, 50.0 * tol * (1.0 + h_fd.frobenius_norm())),
        "hessian mismatch"
    );
}

macro_rules! case {
    ($name:ident, $dim:expr, $x:expr, |$xv:ident| $body:expr) => {
        #[test]
        fn $name() {
            struct F;
            impl ScalarFn for F {
                fn dim(&self) -> usize {
                    $dim
                }
                fn call<S: Scalar>(&self, $xv: &[S]) -> S {
                    $body
                }
            }
            check(F, &$x, 1e-4);
        }
    };
}

case!(polynomial_cubic, 2, [0.7, -0.3], |x| {
    x[0] * x[0] * x[0] + S::from_f64(3.0) * x[0] * x[1] - x[1] * x[1]
});

case!(rational_function, 2, [0.5, 0.8], |x| {
    (x[0] + S::from_f64(2.0)) / (x[1] * x[1] + S::from_f64(1.0))
});

case!(exp_of_sum, 3, [0.1, 0.2, -0.4], |x| ops::sum(x).exp());

case!(log_of_norm, 3, [0.6, -0.9, 1.2], |x| {
    (ops::norm_sq(x) + S::from_f64(1.0)).ln()
});

case!(trig_mix, 2, [0.4, 1.1], |x| {
    x[0].sin() * x[1].cos() + (x[0] * x[1]).sin()
});

case!(sqrt_chain, 1, [2.5], |x| (x[0].sqrt() + S::from_f64(1.0)).sqrt());

case!(tanh_network_layer, 3, [0.3, -0.5, 0.9], |x| {
    let z = ops::affine(&[0.5, -1.0, 0.25, 1.5, 0.0, -0.75], &[0.1, -0.2], x);
    ops::dot(&ops::tanh_all(&z), &[S::from_f64(2.0), S::from_f64(-1.0)])
});

case!(sigmoid_composition, 2, [0.2, -0.7], |x| {
    (x[0] * S::from_f64(3.0) + x[1]).sigmoid() * x[1]
});

case!(powi_negative_exponent, 1, [1.7], |x| x[0].powi(-2));

case!(powf_const_exponent, 1, [2.3], |x| x[0].powf_const(1.7));

case!(logsumexp_margin, 3, [0.5, -0.2, 0.1], |x| {
    ops::logsumexp(x) - ops::mean(x)
});

// 8 nested unary ops: stresses adjoint accumulation depth.
case!(deep_chain, 1, [0.4], |x| x[0].sin().exp().sqrt().ln().cos().tanh().exp().sqrt());

#[test]
fn relu_gradient_away_from_kink() {
    struct F;
    impl ScalarFn for F {
        fn dim(&self) -> usize {
            2
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            x[0].relu() * S::from_f64(2.0) + (x[1] - S::from_f64(0.5)).relu()
        }
    }
    let ad = AutoDiffFn::new(F);
    // Both units active.
    let (_, g) = ad.grad(&[1.0, 1.0]);
    assert_eq!(g, vec![2.0, 1.0]);
    // Both inactive.
    let (_, g) = ad.grad(&[-1.0, 0.0]);
    assert_eq!(g, vec![0.0, 0.0]);
}

#[test]
fn abs_and_min_subgradients() {
    struct F;
    impl ScalarFn for F {
        fn dim(&self) -> usize {
            2
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            x[0].abs() + x[0].min(x[1])
        }
    }
    let ad = AutoDiffFn::new(F);
    let (_, g) = ad.grad(&[-2.0, 5.0]);
    // d|x|/dx = -1; min picks x[0].
    assert_eq!(g, vec![0.0, 0.0]); // -1 (abs) + 1 (min) = 0 on x0
    let (_, g) = ad.grad(&[3.0, -5.0]);
    assert_eq!(g, vec![1.0, 1.0]); // +1 (abs) on x0; min picks x1
}

#[test]
fn second_derivatives_of_classic_functions() {
    // Closed forms: f = x·eˣ → f'' = (x + 2)eˣ.
    struct XExp;
    impl ScalarFn for XExp {
        fn dim(&self) -> usize {
            1
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            x[0] * x[0].exp()
        }
    }
    let ad = AutoDiffFn::new(XExp);
    let x = 0.8;
    let h = ad.hessian(&[x]);
    assert!((h[(0, 0)] - (x + 2.0) * x.exp()).abs() < 1e-10);

    // f = ln(x)² → f'' = 2(1 - ln x)/x².
    struct LnSq;
    impl ScalarFn for LnSq {
        fn dim(&self) -> usize {
            1
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            x[0].ln() * x[0].ln()
        }
    }
    let ad = AutoDiffFn::new(LnSq);
    let x = 1.9;
    let h = ad.hessian(&[x]);
    assert!((h[(0, 0)] - 2.0 * (1.0 - x.ln()) / (x * x)).abs() < 1e-10);
}

#[test]
fn gradient_scales_to_larger_dimensions() {
    // logsumexp over 64 inputs: gradient is softmax; sums to 1.
    struct Lse;
    impl ScalarFn for Lse {
        fn dim(&self) -> usize {
            64
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            ops::logsumexp(x)
        }
    }
    let ad = AutoDiffFn::new(Lse);
    let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin()).collect();
    let (_, g) = ad.grad(&x);
    let total: f64 = g.iter().sum();
    assert!((total - 1.0).abs() < 1e-12);
    assert!(g.iter().all(|&gi| gi > 0.0));
}
