//! Automatic differentiation substrate for AutoMon.
//!
//! The AutoMon paper relies on JAX to turn the *source code* of a monitored
//! function into procedures that evaluate its gradient and Hessian at
//! arbitrary points (§3.1). Rust has no JAX; this crate is the from-scratch
//! replacement, built from three pieces:
//!
//! * [`Scalar`] — a numeric trait over which users write their function
//!   *once*, generically. This is the Rust idiom for "hand AutoMon your
//!   source code": the same body is instantiated with plain `f64` for
//!   evaluation, with forward-mode [`Dual`] numbers for directional
//!   derivatives, and with reverse-mode tape variables ([`Var`]) for
//!   gradients.
//! * [`Tape`] — a reverse-mode Wengert tape, generic over the value type it
//!   carries. `Tape<f64>` yields gradients in one backward pass;
//!   `Tape<Dual>` (forward-over-reverse) yields Hessian-vector products.
//! * [`AutoDiffFn`] — the user-facing wrapper exposing `eval`, `grad`,
//!   `hvp`, and full `hessian` (d Hessian-vector products, symmetrized),
//!   plus sample-based constant-Hessian detection used by AutoMon to pick
//!   ADCD-E over ADCD-X.
//!
//! Non-smooth primitives (`abs`, `max`, and ReLU built from them) propagate
//! the derivative of the active branch, exactly as JAX does — the paper
//! leans on this to monitor ReLU networks (§3.1, §4.2).
//!
//! # Example
//!
//! ```
//! use automon_autodiff::{AutoDiffFn, Scalar, ScalarFn};
//!
//! struct Rosenbrock;
//! impl ScalarFn for Rosenbrock {
//!     fn dim(&self) -> usize { 2 }
//!     fn call<S: Scalar>(&self, x: &[S]) -> S {
//!         let one = S::from_f64(1.0);
//!         let hundred = S::from_f64(100.0);
//!         (one - x[0]) * (one - x[0])
//!             + hundred * (x[1] - x[0] * x[0]) * (x[1] - x[0] * x[0])
//!     }
//! }
//!
//! let f = AutoDiffFn::new(Rosenbrock);
//! let x = [1.0, 1.0];
//! assert_eq!(f.eval(&x), 0.0);
//! assert_eq!(f.grad(&x).1, vec![0.0, 0.0]); // the global minimum
//! let h = f.hessian(&x);
//! assert!((h[(0, 0)] - 802.0).abs() < 1e-9);
//! ```

mod dual;
pub mod finite_diff;
mod func;
mod graph;
pub mod ops;
mod scalar;
mod tape;

pub use dual::Dual;
pub use func::{AutoDiffFn, DifferentiableFn, HessianEvaluator, HvpEvaluator, ScalarFn};
pub use graph::GraphWorkspace;
pub use scalar::{lit, Scalar};
pub use tape::{Tape, Var};
