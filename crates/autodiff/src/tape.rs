//! Reverse-mode automatic differentiation on a Wengert tape.

use crate::Scalar;
use std::cell::RefCell;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// One recorded operation: up to two parents with their local partials.
#[derive(Clone, Copy)]
struct Node<V> {
    parents: [usize; 2],
    partials: [V; 2],
    arity: u8,
}

/// A reverse-mode tape, generic over the value type it carries.
///
/// `Tape<f64>` computes gradients; `Tape<Dual>` computes Hessian-vector
/// products (forward-over-reverse). Each arithmetic operation on a tape
/// [`Var`] appends a node recording its parents and local partial
/// derivatives; [`Tape::gradient`] then runs a single backward sweep.
///
/// A tape is cheap to create and intended to be used for one forward +
/// backward pass, which keeps the API free of explicit "reset" state.
pub struct Tape<V> {
    nodes: RefCell<Vec<Node<V>>>,
}

impl<V: Scalar> Default for Tape<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Scalar> Tape<V> {
    /// An empty tape with the default arena capacity.
    pub fn new() -> Self {
        Self::with_capacity(256)
    }

    /// An empty tape sized for `ops` nodes — callers that know the op
    /// count of the function they are about to trace (e.g. from a prior
    /// trace) avoid arena regrowth entirely.
    pub fn with_capacity(ops: usize) -> Self {
        Self {
            nodes: RefCell::new(Vec::with_capacity(ops)),
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// `true` when no node has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Register an independent (input) variable.
    pub fn var(&self, v: V) -> Var<'_, V> {
        let idx = self.push(Node {
            parents: [0, 0],
            partials: [V::from_f64(0.0); 2],
            arity: 0,
        });
        Var {
            tape: Some(self),
            idx,
            v,
        }
    }

    fn push(&self, node: Node<V>) -> usize {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(node);
        nodes.len() - 1
    }

    /// Reverse sweep: the gradient of `output` with respect to `inputs`.
    ///
    /// # Panics
    /// Panics if `output` or any input is a constant (not recorded on this
    /// tape), or belongs to a different tape (detected as out-of-range
    /// indices only; callers own tape discipline).
    pub fn gradient(&self, output: Var<'_, V>, inputs: &[Var<'_, V>]) -> Vec<V> {
        let out_idx = output.idx_checked("gradient: output is a constant");
        let nodes = self.nodes.borrow();
        let mut adjoint = vec![V::from_f64(0.0); nodes.len()];
        adjoint[out_idx] = V::from_f64(1.0);
        for i in (0..=out_idx).rev() {
            let node = &nodes[i];
            let a = adjoint[i];
            for k in 0..node.arity as usize {
                let p = node.parents[k];
                adjoint[p] = adjoint[p] + node.partials[k] * a;
            }
        }
        inputs
            .iter()
            .map(|x| adjoint[x.idx_checked("gradient: input is a constant")])
            .collect()
    }
}

/// A value recorded on a reverse-mode [`Tape`], or a free constant.
///
/// Constants (created with `Scalar::from_f64`) carry no tape reference and
/// contribute no derivative; mixing them with tape variables works
/// transparently, so generic function bodies need no special cases.
pub struct Var<'t, V: Scalar> {
    tape: Option<&'t Tape<V>>,
    idx: usize,
    v: V,
}

impl<V: Scalar> Clone for Var<'_, V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<V: Scalar> Copy for Var<'_, V> {}

impl<V: Scalar> fmt::Debug for Var<'_, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Var")
            .field("idx", &self.idx)
            .field("v", &self.v)
            .field("const", &self.tape.is_none())
            .finish()
    }
}

impl<'t, V: Scalar> Var<'t, V> {
    /// The carried value.
    pub fn val(&self) -> V {
        self.v
    }

    fn idx_checked(&self, msg: &str) -> usize {
        assert!(self.tape.is_some(), "{msg}");
        self.idx
    }

    /// Record a unary operation with local partial `dv`.
    fn unary(self, v: V, dv: V) -> Self {
        match self.tape {
            None => Var {
                tape: None,
                idx: 0,
                v,
            },
            Some(tape) => {
                let idx = tape.push(Node {
                    parents: [self.idx, 0],
                    partials: [dv, V::from_f64(0.0)],
                    arity: 1,
                });
                Var {
                    tape: Some(tape),
                    idx,
                    v,
                }
            }
        }
    }

    /// Record a binary operation with partials `da` (w.r.t. self) and `db`.
    fn binary(self, other: Self, v: V, da: V, db: V) -> Self {
        let tape = self.tape.or(other.tape);
        let Some(tape) = tape else {
            return Var {
                tape: None,
                idx: 0,
                v,
            };
        };
        let mut parents = [0usize; 2];
        let mut partials = [V::from_f64(0.0); 2];
        let mut arity = 0u8;
        if self.tape.is_some() {
            parents[arity as usize] = self.idx;
            partials[arity as usize] = da;
            arity += 1;
        }
        if other.tape.is_some() {
            parents[arity as usize] = other.idx;
            partials[arity as usize] = db;
            arity += 1;
        }
        let idx = tape.push(Node {
            parents,
            partials,
            arity,
        });
        Var {
            tape: Some(tape),
            idx,
            v,
        }
    }
}

impl<'t, V: Scalar> Add for Var<'t, V> {
    type Output = Self;
    fn add(self, o: Self) -> Self {
        let one = V::from_f64(1.0);
        self.binary(o, self.v + o.v, one, one)
    }
}

impl<'t, V: Scalar> Sub for Var<'t, V> {
    type Output = Self;
    fn sub(self, o: Self) -> Self {
        let one = V::from_f64(1.0);
        self.binary(o, self.v - o.v, one, -one)
    }
}

impl<'t, V: Scalar> Mul for Var<'t, V> {
    type Output = Self;
    fn mul(self, o: Self) -> Self {
        self.binary(o, self.v * o.v, o.v, self.v)
    }
}

impl<'t, V: Scalar> Div for Var<'t, V> {
    type Output = Self;
    fn div(self, o: Self) -> Self {
        let inv = V::from_f64(1.0) / o.v;
        self.binary(o, self.v * inv, inv, -self.v * inv * inv)
    }
}

impl<'t, V: Scalar> Neg for Var<'t, V> {
    type Output = Self;
    fn neg(self) -> Self {
        self.unary(-self.v, V::from_f64(-1.0))
    }
}

impl<'t, V: Scalar> Scalar for Var<'t, V> {
    fn from_f64(c: f64) -> Self {
        Var {
            tape: None,
            idx: 0,
            v: V::from_f64(c),
        }
    }

    fn value(&self) -> f64 {
        self.v.value()
    }

    fn exp(self) -> Self {
        let e = self.v.exp();
        self.unary(e, e)
    }

    fn ln(self) -> Self {
        self.unary(self.v.ln(), V::from_f64(1.0) / self.v)
    }

    fn tanh(self) -> Self {
        let t = self.v.tanh();
        self.unary(t, V::from_f64(1.0) - t * t)
    }

    fn sin(self) -> Self {
        self.unary(self.v.sin(), self.v.cos())
    }

    fn cos(self) -> Self {
        self.unary(self.v.cos(), -self.v.sin())
    }

    fn sqrt(self) -> Self {
        let s = self.v.sqrt();
        self.unary(s, V::from_f64(0.5) / s)
    }

    fn powi(self, n: i32) -> Self {
        self.unary(
            self.v.powi(n),
            V::from_f64(f64::from(n)) * self.v.powi(n - 1),
        )
    }

    fn abs(self) -> Self {
        if self.v.value() >= 0.0 {
            self.unary(self.v, V::from_f64(1.0))
        } else {
            self.unary(-self.v, V::from_f64(-1.0))
        }
    }

    fn max(self, other: Self) -> Self {
        // Branch on primal values; derivative follows the winner, exactly
        // like JAX's `maximum` under a single sub-gradient choice.
        if self.v.value() >= other.v.value() {
            self.binary(other, self.v, V::from_f64(1.0), V::from_f64(0.0))
        } else {
            self.binary(other, other.v, V::from_f64(0.0), V::from_f64(1.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dual;

    #[test]
    fn gradient_of_product() {
        let tape = Tape::<f64>::new();
        let x = tape.var(3.0);
        let y = tape.var(4.0);
        let z = x * y + x;
        assert_eq!(z.val(), 15.0);
        let g = tape.gradient(z, &[x, y]);
        assert_eq!(g, vec![5.0, 3.0]);
    }

    #[test]
    fn gradient_with_constants() {
        let tape = Tape::<f64>::new();
        let x = tape.var(2.0);
        let c = Var::<f64>::from_f64(10.0);
        let z = c * x * x + c; // 10x² + 10 → dz/dx = 40
        assert_eq!(z.val(), 50.0);
        let g = tape.gradient(z, &[x]);
        assert_eq!(g, vec![40.0]);
    }

    #[test]
    fn gradient_of_transcendentals() {
        let tape = Tape::<f64>::new();
        let x = tape.var(0.5);
        let z = x.exp() * x.sin() + x.ln();
        let g = tape.gradient(z, &[x])[0];
        let expected = 0.5f64.exp() * (0.5f64.sin() + 0.5f64.cos()) + 2.0;
        assert!((g - expected).abs() < 1e-12);
    }

    #[test]
    fn fan_out_accumulates() {
        // z = x·x uses x twice; adjoint must accumulate.
        let tape = Tape::<f64>::new();
        let x = tape.var(7.0);
        let z = x * x;
        assert_eq!(tape.gradient(z, &[x]), vec![14.0]);
    }

    #[test]
    fn division_partials() {
        let tape = Tape::<f64>::new();
        let x = tape.var(6.0);
        let y = tape.var(3.0);
        let z = x / y;
        let g = tape.gradient(z, &[x, y]);
        assert!((g[0] - 1.0 / 3.0).abs() < 1e-15);
        assert!((g[1] + 6.0 / 9.0).abs() < 1e-15);
    }

    #[test]
    fn relu_and_max_branches() {
        let tape = Tape::<f64>::new();
        let x = tape.var(-2.0);
        let z = x.relu();
        assert_eq!(z.val(), 0.0);
        assert_eq!(tape.gradient(z, &[x]), vec![0.0]);

        let tape = Tape::<f64>::new();
        let x = tape.var(2.0);
        let z = x.relu() * Var::from_f64(3.0);
        assert_eq!(tape.gradient(z, &[x]), vec![3.0]);
    }

    #[test]
    fn forward_over_reverse_gives_hvp() {
        // f(x, y) = x²y. H = [[2y, 2x], [2x, 0]].
        // At (3, 5), direction (1, 0): H·v = (10, 6).
        let tape = Tape::<Dual>::new();
        let x = tape.var(Dual::new(3.0, 1.0));
        let y = tape.var(Dual::new(5.0, 0.0));
        let z = x * x * y;
        let g = tape.gradient(z, &[x, y]);
        assert_eq!(g[0].v, 30.0); // ∂f/∂x = 2xy
        assert_eq!(g[1].v, 9.0); // ∂f/∂y = x²
        assert_eq!(g[0].d, 10.0); // (H·v)₁ = 2y
        assert_eq!(g[1].d, 6.0); // (H·v)₂ = 2x
    }

    #[test]
    #[should_panic(expected = "output is a constant")]
    fn constant_output_panics() {
        let tape = Tape::<f64>::new();
        let x = tape.var(1.0);
        let c = Var::<f64>::from_f64(2.0);
        tape.gradient(c, &[x]);
    }

    #[test]
    fn tape_len_tracks_nodes() {
        let tape = Tape::<f64>::new();
        assert!(tape.is_empty());
        let x = tape.var(1.0);
        let _ = x + x;
        assert_eq!(tape.len(), 2);
    }
}
