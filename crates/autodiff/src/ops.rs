//! Generic vector helpers for writing monitored functions.
//!
//! Function bodies operate on `&[S]` for a generic [`Scalar`]; these
//! helpers cover the linear-algebra idioms the evaluation functions use
//! (dot products, norms, affine maps, log-sum-exp, softmax) so user code
//! reads like the paper's NumPy snippets.

use crate::Scalar;

/// `Σᵢ aᵢ·bᵢ`.
///
/// # Panics
/// Panics on length mismatch.
pub fn dot<S: Scalar>(a: &[S], b: &[S]) -> S {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let mut acc = S::from_f64(0.0);
    for (&x, &y) in a.iter().zip(b) {
        acc = acc + x * y;
    }
    acc
}

/// `Σᵢ xᵢ`.
pub fn sum<S: Scalar>(x: &[S]) -> S {
    let mut acc = S::from_f64(0.0);
    for &v in x {
        acc = acc + v;
    }
    acc
}

/// Arithmetic mean.
///
/// # Panics
/// Panics on empty input.
pub fn mean<S: Scalar>(x: &[S]) -> S {
    assert!(!x.is_empty(), "mean: empty slice");
    sum(x) * S::from_f64(1.0 / x.len() as f64)
}

/// Squared Euclidean norm `Σ xᵢ²`.
pub fn norm_sq<S: Scalar>(x: &[S]) -> S {
    let mut acc = S::from_f64(0.0);
    for &v in x {
        acc = acc + v * v;
    }
    acc
}

/// Affine map `W·x + b` with constant (f64) weights, row-major
/// `out × in` — one dense neural-network layer, the `W @ x + b` of the
/// paper's `f_nn` snippet.
///
/// # Panics
/// Panics when shapes disagree.
pub fn affine<S: Scalar>(w: &[f64], b: &[f64], x: &[S]) -> Vec<S> {
    let out_dim = b.len();
    assert!(out_dim > 0, "affine: empty output");
    assert_eq!(w.len() % out_dim, 0, "affine: ragged weight matrix");
    let in_dim = w.len() / out_dim;
    assert_eq!(x.len(), in_dim, "affine: input width mismatch");
    (0..out_dim)
        .map(|o| {
            let mut acc = S::from_f64(b[o]);
            for (wi, &xi) in w[o * in_dim..(o + 1) * in_dim].iter().zip(x) {
                if *wi != 0.0 {
                    acc = acc + S::from_f64(*wi) * xi;
                }
            }
            acc
        })
        .collect()
}

/// Numerically-stable `log Σ exp(xᵢ)` (shifts by the max primal value —
/// the shift is a constant w.r.t. differentiation at the evaluation
/// point, matching standard AD practice).
///
/// # Panics
/// Panics on empty input.
pub fn logsumexp<S: Scalar>(x: &[S]) -> S {
    assert!(!x.is_empty(), "logsumexp: empty slice");
    let m = x
        .iter()
        .map(|v| v.value())
        .fold(f64::NEG_INFINITY, f64::max);
    let shift = S::from_f64(m);
    let mut acc = S::from_f64(0.0);
    for &v in x {
        acc = acc + (v - shift).exp();
    }
    acc.ln() + shift
}

/// Softmax probabilities.
pub fn softmax<S: Scalar>(x: &[S]) -> Vec<S> {
    let lse = logsumexp(x);
    x.iter().map(|&v| (v - lse).exp()).collect()
}

/// Element-wise `tanh`.
pub fn tanh_all<S: Scalar>(x: &[S]) -> Vec<S> {
    x.iter().map(|v| v.tanh()).collect()
}

/// Element-wise ReLU.
pub fn relu_all<S: Scalar>(x: &[S]) -> Vec<S> {
    x.iter().map(|v| v.relu()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AutoDiffFn, ScalarFn};

    #[test]
    fn dot_sum_mean_norm() {
        let a = [1.0f64, 2.0, 3.0];
        let b = [4.0f64, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        assert_eq!(sum(&a), 6.0);
        assert_eq!(mean(&a), 2.0);
        assert_eq!(norm_sq(&b), 77.0);
    }

    #[test]
    fn affine_matches_manual() {
        // W = [[1, 2], [3, 4]], b = [10, 20], x = [1, 1].
        let y = affine(&[1.0, 2.0, 3.0, 4.0], &[10.0, 20.0], &[1.0f64, 1.0]);
        assert_eq!(y, vec![13.0, 27.0]);
    }

    #[test]
    fn logsumexp_is_stable_and_correct() {
        let x = [1000.0f64, 1000.0];
        let v = logsumexp(&x);
        assert!((v - (1000.0 + 2.0f64.ln())).abs() < 1e-9);
        let sm = softmax(&x);
        assert!((sm[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn generic_ops_differentiate() {
        // f(x) = logsumexp(W·x + b): a softmax-classifier margin — the
        // kind of function a user would monitor.
        struct SoftMargin;
        impl ScalarFn for SoftMargin {
            fn dim(&self) -> usize {
                2
            }
            fn call<S: crate::Scalar>(&self, x: &[S]) -> S {
                let z = affine(&[1.0, -1.0, 0.5, 2.0], &[0.0, 0.1], x);
                logsumexp(&z)
            }
        }
        let f = AutoDiffFn::new(SoftMargin);
        let x = [0.3, -0.2];
        let (_, g) = f.grad(&x);
        let fd = crate::finite_diff::gradient(|y| f.eval(y), &x, 1e-6);
        for (a, b) in g.iter().zip(&fd) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
        // Softmax gradients sum structure: Hessian symmetric + finite.
        let h = f.hessian(&x);
        assert!(h.is_symmetric(1e-12));
    }

    #[test]
    fn elementwise_helpers() {
        let x = [-1.0f64, 0.5];
        assert_eq!(relu_all(&x), vec![0.0, 0.5]);
        assert!((tanh_all(&x)[1] - 0.5f64.tanh()).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_checks_lengths() {
        let _ = dot(&[1.0f64], &[1.0, 2.0]);
    }
}
