//! User-facing function wrappers: evaluation, gradients, Hessians.

use crate::graph::GraphWorkspace;
use crate::{Dual, Scalar, Tape};
use automon_linalg::Matrix;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A multivariate scalar function written once over a generic [`Scalar`].
///
/// This is the AutoMon entry point for user code: implementing `call`
/// generically is the Rust equivalent of handing the paper's prototype the
/// Python source of `f` — the same body is instantiated for plain
/// evaluation, forward-mode, and reverse-mode differentiation.
///
/// Optional box bounds describe the function's domain `D` (e.g. KLD's
/// probability vectors live in `[τ, 1]`); AutoMon intersects the
/// neighborhood `B` with these bounds before searching for extreme
/// eigenvalues.
pub trait ScalarFn: Send + Sync + 'static {
    /// Input dimension `d`.
    fn dim(&self) -> usize;

    /// The function body, generic over the AD scalar.
    fn call<S: Scalar>(&self, x: &[S]) -> S;

    /// Lower bounds of the domain box, if any (length `d`).
    fn lower_bounds(&self) -> Option<Vec<f64>> {
        None
    }

    /// Upper bounds of the domain box, if any (length `d`).
    fn upper_bounds(&self) -> Option<Vec<f64>> {
        None
    }

    /// Hint that the Hessian is constant over the whole domain.
    ///
    /// `None` (default) lets [`AutoDiffFn`] decide by probing; `Some(b)`
    /// overrides detection — the escape hatch for functions whose
    /// constancy is known a priori.
    fn constant_hessian_hint(&self) -> Option<bool> {
        None
    }
}

/// Object-safe differentiable-function interface.
///
/// AutoMon's protocol code works against this trait so it can hold
/// `Box<dyn DifferentiableFn>` without knowing the concrete function type.
pub trait DifferentiableFn: Send + Sync {
    /// Input dimension `d`.
    fn dim(&self) -> usize;

    /// Evaluate `f(x)`.
    fn eval(&self, x: &[f64]) -> f64;

    /// Evaluate `(f(x), ∇f(x))` in one reverse pass.
    fn eval_grad(&self, x: &[f64]) -> (f64, Vec<f64>);

    /// Hessian-vector product `H(x)·v` (forward-over-reverse).
    fn hvp(&self, x: &[f64], v: &[f64]) -> Vec<f64>;

    /// The full (symmetrized) Hessian `H(x)`.
    fn hessian(&self, x: &[f64]) -> Matrix {
        let d = self.dim();
        let mut h = Matrix::zeros(d, d);
        let mut dir = vec![0.0; d];
        for j in 0..d {
            dir[j] = 1.0;
            let col = self.hvp(x, &dir);
            dir[j] = 0.0;
            for i in 0..d {
                h[(i, j)] = col[i];
            }
        }
        h.symmetrize();
        h
    }

    /// Domain lower bounds (length `d`), if the function declared any.
    fn lower_bounds(&self) -> Option<Vec<f64>> {
        None
    }

    /// Domain upper bounds (length `d`), if the function declared any.
    fn upper_bounds(&self) -> Option<Vec<f64>> {
        None
    }

    /// Whether `H(x)` is constant over the domain.
    ///
    /// Decides ADCD-E vs ADCD-X (paper §3.2: "we can automatically detect
    /// functions with a constant Hessian by looking at the computational
    /// graph"). This implementation detects it by probing the Hessian at
    /// several well-spread domain points at wrap time (see the
    /// `AutoDiffFn` docs for the rationale).
    fn has_constant_hessian(&self) -> bool;

    /// The constant Hessian itself, when [`Self::has_constant_hessian`]
    /// and the implementation kept one around.
    ///
    /// [`AutoDiffFn`] shares the Hessian already computed by its
    /// wrap-time constancy probes, so ADCD-E never pays for a redundant
    /// recomputation at the first full sync. `None` (the default) makes
    /// callers fall back to [`Self::hessian`].
    fn constant_hessian(&self) -> Option<Matrix> {
        None
    }

    /// A reusable Hessian evaluator for repeated queries.
    ///
    /// The returned evaluator owns whatever scratch state it needs, so
    /// hot loops (the ADCD-X eigenvalue search evaluates dozens of
    /// Hessians per full sync) can keep one per worker thread and avoid
    /// re-tracing and re-allocating per query. The default delegates to
    /// [`Self::hessian`]; [`AutoDiffFn`] overrides it with a
    /// record-once/replay-many graph workspace that is bit-identical to
    /// the tape path.
    fn hessian_eval(&self) -> Box<dyn HessianEvaluator + '_> {
        Box::new(FallbackHessianEval { f: self })
    }

    /// A reusable Hessian-vector-product evaluator for repeated queries.
    ///
    /// The matrix-free counterpart of [`Self::hessian_eval`]: the
    /// Lanczos eigen search applies `H(x)·v` dozens of times per probe
    /// point and must never pay for materializing `H`. The default
    /// delegates to [`Self::hvp`] (re-tracing per call);
    /// [`AutoDiffFn`] overrides it with a record-once/replay-many graph
    /// workspace whose products are bit-identical to the tape path.
    fn hvp_eval(&self) -> Box<dyn HvpEvaluator + '_> {
        Box::new(FallbackHvpEval { f: self })
    }
}

/// A stateful Hessian evaluator writing into caller-owned storage.
///
/// Obtained from [`DifferentiableFn::hessian_eval`]; each instance is
/// single-threaded (`&mut self`) but `Send`, so parallel searches hand
/// one to each worker.
pub trait HessianEvaluator: Send {
    /// Input dimension `d`.
    fn dim(&self) -> usize;

    /// Write the full symmetrized Hessian `H(x)` into `out` (`d × d`).
    fn hessian_into(&mut self, x: &[f64], out: &mut Matrix);
}

/// Default evaluator: delegates to [`DifferentiableFn::hessian`].
struct FallbackHessianEval<'a, F: DifferentiableFn + ?Sized> {
    f: &'a F,
}

impl<F: DifferentiableFn + ?Sized> HessianEvaluator for FallbackHessianEval<'_, F> {
    fn dim(&self) -> usize {
        self.f.dim()
    }

    fn hessian_into(&mut self, x: &[f64], out: &mut Matrix) {
        *out = self.f.hessian(x);
    }
}

/// A stateful Hessian-vector-product evaluator writing into
/// caller-owned storage.
///
/// Obtained from [`DifferentiableFn::hvp_eval`]; single-threaded
/// (`&mut self`) but `Send`, like [`HessianEvaluator`].
pub trait HvpEvaluator: Send {
    /// Input dimension `d`.
    fn dim(&self) -> usize;

    /// Write `H(x)·v` into `out` (all slices length `d`).
    fn hvp_into(&mut self, x: &[f64], v: &[f64], out: &mut [f64]);
}

/// Default evaluator: delegates to [`DifferentiableFn::hvp`].
struct FallbackHvpEval<'a, F: DifferentiableFn + ?Sized> {
    f: &'a F,
}

impl<F: DifferentiableFn + ?Sized> HvpEvaluator for FallbackHvpEval<'_, F> {
    fn dim(&self) -> usize {
        self.f.dim()
    }

    fn hvp_into(&mut self, x: &[f64], v: &[f64], out: &mut [f64]) {
        out.copy_from_slice(&self.f.hvp(x, v));
    }
}

/// Graph-workspace evaluator used by [`AutoDiffFn`]: records the op
/// structure once per point and replays `d` seed tangents.
struct GraphHessianEval<'a, F: ScalarFn> {
    f: &'a F,
    ws: GraphWorkspace,
}

impl<F: ScalarFn> HessianEvaluator for GraphHessianEval<'_, F> {
    fn dim(&self) -> usize {
        self.f.dim()
    }

    fn hessian_into(&mut self, x: &[f64], out: &mut Matrix) {
        self.ws.hessian_into(self.f, x, out);
    }
}

/// Graph-workspace HVP evaluator used by [`AutoDiffFn`]: one recorded
/// graph, one tangent lane per product.
struct GraphHvpEval<'a, F: ScalarFn> {
    f: &'a F,
    ws: GraphWorkspace,
}

impl<F: ScalarFn> HvpEvaluator for GraphHvpEval<'_, F> {
    fn dim(&self) -> usize {
        self.f.dim()
    }

    fn hvp_into(&mut self, x: &[f64], v: &[f64], out: &mut [f64]) {
        self.ws.hvp_into(self.f, x, v, out);
    }
}

/// Differentiable wrapper around a [`ScalarFn`].
///
/// Construction probes the function once to decide Hessian constancy
/// (unless the function provides a hint); all derivative queries afterwards
/// are allocation-light single passes.
pub struct AutoDiffFn<F: ScalarFn> {
    f: F,
    constant_hessian: bool,
    /// The Hessian from the wrap-time constancy probes, kept when it is
    /// constant so ADCD-E reuses it instead of recomputing at `x0`.
    cached_hessian: Option<Matrix>,
    /// Op count observed on the last trace (0 = not yet traced); sizes
    /// subsequent tape arenas so they never regrow.
    op_hint: AtomicUsize,
}

impl<F: ScalarFn> AutoDiffFn<F> {
    /// Wrap `f`, probing for Hessian constancy unless `f` hints it.
    ///
    /// When the Hessian is constant — detected or hinted — the probe
    /// Hessian is cached and shared with ADCD-E through
    /// [`DifferentiableFn::constant_hessian`], so wrap-time detection and
    /// the first decomposition are one code path instead of two.
    pub fn new(f: F) -> Self {
        let (constant_hessian, cached_hessian) = match f.constant_hessian_hint() {
            Some(true) => {
                let h = HessianProbe { f: &f }.hessian_at(&Self::probe_points(&f)[0]);
                (true, Some(h))
            }
            Some(false) => (false, None),
            None => {
                let (constant, h0) = Self::detect_constant_hessian(&f);
                (constant, constant.then_some(h0))
            }
        };
        Self {
            f,
            constant_hessian,
            cached_hessian,
            op_hint: AtomicUsize::new(0),
        }
    }

    /// Arena capacity for the next trace: the observed op count, or the
    /// historical default before anything has been traced.
    fn tape_capacity(&self) -> usize {
        match self.op_hint.load(Ordering::Relaxed) {
            0 => 256,
            n => n,
        }
    }

    /// Immutable access to the wrapped function.
    pub fn inner(&self) -> &F {
        &self.f
    }

    /// Evaluate `f(x)` with plain `f64` arithmetic.
    pub fn eval(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.f.dim());
        self.f.call(x)
    }

    /// One reverse pass: `(f(x), ∇f(x))`.
    pub fn grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        let tape = Tape::<f64>::with_capacity(self.tape_capacity());
        let vars: Vec<_> = x.iter().map(|&xi| tape.var(xi)).collect();
        let out = self.f.call(&vars);
        let g = tape.gradient(out, &vars);
        self.op_hint.store(tape.len(), Ordering::Relaxed);
        (out.value(), g)
    }

    /// Hessian-vector product `H(x)·v` via forward-over-reverse.
    pub fn hvp(&self, x: &[f64], v: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), v.len(), "hvp: dimension mismatch");
        let tape = Tape::<Dual>::with_capacity(self.tape_capacity());
        let vars: Vec<_> = x
            .iter()
            .zip(v)
            .map(|(&xi, &vi)| tape.var(Dual::new(xi, vi)))
            .collect();
        let out = self.f.call(&vars);
        let g = tape.gradient(out, &vars);
        self.op_hint.store(tape.len(), Ordering::Relaxed);
        g.into_iter().map(|d| d.d).collect()
    }

    /// The full symmetrized Hessian (d Hessian-vector products).
    pub fn hessian(&self, x: &[f64]) -> Matrix {
        DifferentiableFn::hessian(self, x)
    }

    /// Sample-based constant-Hessian detection.
    ///
    /// The paper's prototype inspects JAX's computational graph to see
    /// whether second derivatives depend on `x`. We compute the same
    /// predicate by *probing*: evaluate `H` at several deterministic,
    /// well-spread points and compare. A non-quadratic analytic function
    /// agreeing on all probes is astronomically unlikely; the
    /// [`ScalarFn::constant_hessian_hint`] override covers pathological
    /// cases. The probe points are kept inside the declared domain box.
    fn detect_constant_hessian(f: &F) -> (bool, Matrix) {
        let probes = Self::probe_points(f);
        let helper = HessianProbe { f };
        let h0 = helper.hessian_at(&probes[0]);
        let scale = h0.frobenius_norm().max(1.0);
        let constant = probes[1..]
            .iter()
            .all(|p| helper.hessian_at(p).approx_eq(&h0, 1e-9 * scale));
        (constant, h0)
    }

    /// Three deterministic, irrational-ish probes to dodge symmetry,
    /// clamped into the declared domain box.
    fn probe_points(f: &F) -> [Vec<f64>; 3] {
        let d = f.dim();
        let lo = f.lower_bounds();
        let hi = f.upper_bounds();
        let clamp = |mut x: Vec<f64>| -> Vec<f64> {
            if let Some(lo) = &lo {
                for (xi, &l) in x.iter_mut().zip(lo) {
                    *xi = xi.max(l);
                }
            }
            if let Some(hi) = &hi {
                for (xi, &h) in x.iter_mut().zip(hi) {
                    *xi = xi.min(h);
                }
            }
            x
        };
        [
            clamp((0..d).map(|i| 0.137 + 0.061 * i as f64).collect()),
            clamp((0..d).map(|i| 0.731 - 0.017 * i as f64).collect()),
            clamp((0..d).map(|i| (-0.311f64).powi((i % 3) as i32 + 1)).collect()),
        ]
    }
}

/// Internal helper so detection can run before `AutoDiffFn` is built.
struct HessianProbe<'a, F: ScalarFn> {
    f: &'a F,
}

impl<F: ScalarFn> HessianProbe<'_, F> {
    fn hessian_at(&self, x: &[f64]) -> Matrix {
        let d = self.f.dim();
        let mut h = Matrix::zeros(d, d);
        let mut dir = vec![0.0; d];
        for j in 0..d {
            dir[j] = 1.0;
            let tape = Tape::<Dual>::new();
            let vars: Vec<_> = x
                .iter()
                .zip(&dir)
                .map(|(&xi, &vi)| tape.var(Dual::new(xi, vi)))
                .collect();
            let out = self.f.call(&vars);
            let col = tape.gradient(out, &vars);
            dir[j] = 0.0;
            for i in 0..d {
                h[(i, j)] = col[i].d;
            }
        }
        h.symmetrize();
        h
    }
}

impl<F: ScalarFn> DifferentiableFn for AutoDiffFn<F> {
    fn dim(&self) -> usize {
        self.f.dim()
    }

    fn eval(&self, x: &[f64]) -> f64 {
        AutoDiffFn::eval(self, x)
    }

    fn eval_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        self.grad(x)
    }

    fn hvp(&self, x: &[f64], v: &[f64]) -> Vec<f64> {
        AutoDiffFn::hvp(self, x, v)
    }

    fn lower_bounds(&self) -> Option<Vec<f64>> {
        self.f.lower_bounds()
    }

    fn upper_bounds(&self) -> Option<Vec<f64>> {
        self.f.upper_bounds()
    }

    fn has_constant_hessian(&self) -> bool {
        self.constant_hessian
    }

    fn constant_hessian(&self) -> Option<Matrix> {
        self.cached_hessian.clone()
    }

    fn hessian_eval(&self) -> Box<dyn HessianEvaluator + '_> {
        Box::new(GraphHessianEval {
            f: &self.f,
            ws: GraphWorkspace::new(),
        })
    }

    fn hvp_eval(&self) -> Box<dyn HvpEvaluator + '_> {
        Box::new(GraphHvpEval {
            f: &self.f,
            ws: GraphWorkspace::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finite_diff;

    struct Quadratic;
    impl ScalarFn for Quadratic {
        fn dim(&self) -> usize {
            2
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            // f = x₀² + 3x₀x₁ - 2x₁²
            x[0] * x[0] + S::from_f64(3.0) * x[0] * x[1] - S::from_f64(2.0) * x[1] * x[1]
        }
    }

    struct SinProd;
    impl ScalarFn for SinProd {
        fn dim(&self) -> usize {
            2
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            x[0].sin() * x[1].exp()
        }
    }

    #[test]
    fn eval_matches_direct() {
        let f = AutoDiffFn::new(Quadratic);
        assert_eq!(f.eval(&[1.0, 2.0]), 1.0 + 6.0 - 8.0);
    }

    #[test]
    fn grad_matches_closed_form() {
        let f = AutoDiffFn::new(Quadratic);
        let (v, g) = f.grad(&[1.0, 2.0]);
        assert_eq!(v, -1.0);
        assert_eq!(g, vec![2.0 + 6.0, 3.0 - 8.0]);
    }

    #[test]
    fn hessian_of_quadratic_is_constant_matrix() {
        let f = AutoDiffFn::new(Quadratic);
        let h = f.hessian(&[5.0, -3.0]);
        assert_eq!(h[(0, 0)], 2.0);
        assert_eq!(h[(0, 1)], 3.0);
        assert_eq!(h[(1, 0)], 3.0);
        assert_eq!(h[(1, 1)], -4.0);
        assert!(f.has_constant_hessian());
    }

    #[test]
    fn nonquadratic_detected_as_varying() {
        let f = AutoDiffFn::new(SinProd);
        assert!(!f.has_constant_hessian());
    }

    #[test]
    fn grad_and_hessian_match_finite_differences() {
        let f = AutoDiffFn::new(SinProd);
        let x = [0.4, -0.7];
        let (_, g) = f.grad(&x);
        let g_fd = finite_diff::gradient(|y| f.eval(y), &x, 1e-6);
        for (a, b) in g.iter().zip(&g_fd) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
        let h = f.hessian(&x);
        let h_fd = finite_diff::hessian(|y| f.eval(y), &x, 1e-4);
        assert!(h.approx_eq(&h_fd, 1e-4));
    }

    #[test]
    fn hvp_matches_hessian_column() {
        let f = AutoDiffFn::new(SinProd);
        let x = [0.3, 0.9];
        let h = f.hessian(&x);
        let hv = f.hvp(&x, &[1.0, 2.0]);
        assert!((hv[0] - (h[(0, 0)] + 2.0 * h[(0, 1)])).abs() < 1e-12);
        assert!((hv[1] - (h[(1, 0)] + 2.0 * h[(1, 1)])).abs() < 1e-12);
    }

    #[test]
    fn hint_overrides_detection() {
        struct Hinted;
        impl ScalarFn for Hinted {
            fn dim(&self) -> usize {
                1
            }
            fn call<S: Scalar>(&self, x: &[S]) -> S {
                x[0].sin()
            }
            fn constant_hessian_hint(&self) -> Option<bool> {
                Some(true)
            }
        }
        assert!(AutoDiffFn::new(Hinted).has_constant_hessian());
    }

    #[test]
    fn domain_bounds_pass_through() {
        struct Bounded;
        impl ScalarFn for Bounded {
            fn dim(&self) -> usize {
                2
            }
            fn call<S: Scalar>(&self, x: &[S]) -> S {
                x[0].ln() + x[1].ln()
            }
            fn lower_bounds(&self) -> Option<Vec<f64>> {
                Some(vec![1e-6; 2])
            }
        }
        let f = AutoDiffFn::new(Bounded);
        assert_eq!(DifferentiableFn::lower_bounds(&f), Some(vec![1e-6; 2]));
        assert_eq!(DifferentiableFn::upper_bounds(&f), None);
        // ln has a varying Hessian; probes stayed in the domain (no NaN).
        assert!(!f.has_constant_hessian());
    }
}
