//! Finite-difference derivative approximations.
//!
//! Used in two places: as the cross-check oracle for the AD engine's test
//! suite, and by `automon-opt` to differentiate eigenvalue objectives whose
//! analytic derivatives would require third-order AD.

use automon_linalg::Matrix;

/// Central-difference gradient of `f` at `x` with step `h`.
pub fn gradient(mut f: impl FnMut(&[f64]) -> f64, x: &[f64], h: f64) -> Vec<f64> {
    let mut g = vec![0.0; x.len()];
    let mut xp = x.to_vec();
    for i in 0..x.len() {
        let xi = x[i];
        xp[i] = xi + h;
        let fp = f(&xp);
        xp[i] = xi - h;
        let fm = f(&xp);
        xp[i] = xi;
        g[i] = (fp - fm) / (2.0 * h);
    }
    g
}

/// Central-difference Hessian of `f` at `x` with step `h` (symmetrized).
pub fn hessian(mut f: impl FnMut(&[f64]) -> f64, x: &[f64], h: f64) -> Matrix {
    let d = x.len();
    let mut m = Matrix::zeros(d, d);
    let f0 = f(x);
    let mut xp = x.to_vec();
    // Diagonal: (f(x+h) - 2f(x) + f(x-h)) / h².
    for i in 0..d {
        let xi = x[i];
        xp[i] = xi + h;
        let fp = f(&xp);
        xp[i] = xi - h;
        let fm = f(&xp);
        xp[i] = xi;
        m[(i, i)] = (fp - 2.0 * f0 + fm) / (h * h);
    }
    // Off-diagonal: four-point formula.
    for i in 0..d {
        for j in (i + 1)..d {
            let (xi, xj) = (x[i], x[j]);
            xp[i] = xi + h;
            xp[j] = xj + h;
            let fpp = f(&xp);
            xp[j] = xj - h;
            let fpm = f(&xp);
            xp[i] = xi - h;
            let fmm = f(&xp);
            xp[j] = xj + h;
            let fmp = f(&xp);
            xp[i] = xi;
            xp[j] = xj;
            let v = (fpp - fpm - fmp + fmm) / (4.0 * h * h);
            m[(i, j)] = v;
            m[(j, i)] = v;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_of_quadratic() {
        let g = gradient(|x| x[0] * x[0] + 2.0 * x[1], &[3.0, 1.0], 1e-6);
        assert!((g[0] - 6.0).abs() < 1e-6);
        assert!((g[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn hessian_of_coupled_quadratic() {
        // f = x² + 4xy + y² → H = [[2, 4], [4, 2]].
        let h = hessian(|x| x[0] * x[0] + 4.0 * x[0] * x[1] + x[1] * x[1], &[0.3, -0.2], 1e-4);
        assert!((h[(0, 0)] - 2.0).abs() < 1e-3);
        assert!((h[(0, 1)] - 4.0).abs() < 1e-3);
        assert!((h[(1, 1)] - 2.0).abs() < 1e-3);
        assert!(h.is_symmetric(0.0));
    }
}
