//! The generic scalar trait over which monitored functions are written.

use std::fmt::Debug;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A differentiable scalar.
///
/// Monitored functions are written once, generically over `S: Scalar`
/// (see [`crate::ScalarFn`]); the AD machinery then instantiates them with
/// `f64` (plain evaluation), [`crate::Dual`] (forward mode), or tape
/// variables (reverse mode). The primitive set mirrors what the paper's
/// evaluation functions need: arithmetic, `exp`/`ln`, `tanh`/`sigmoid`
/// (MLP, DNN), `sin`/`cos`, `sqrt`, integer powers, and the non-smooth
/// `abs`/`max` from which ReLU is built.
///
/// `value()` exposes the primal value so that *data-dependent control flow*
/// can branch on it; derivatives then follow the taken branch, which is the
/// standard AD semantics (and JAX's).
pub trait Scalar:
    Copy
    + Debug
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
{
    /// Lift a constant into this scalar type (zero derivative).
    fn from_f64(c: f64) -> Self;

    /// The primal (undifferentiated) value.
    fn value(&self) -> f64;

    /// Natural exponential `eˣ`.
    fn exp(self) -> Self;

    /// Natural logarithm `ln x`.
    fn ln(self) -> Self;

    /// Hyperbolic tangent.
    fn tanh(self) -> Self;

    /// Sine.
    fn sin(self) -> Self;

    /// Cosine.
    fn cos(self) -> Self;

    /// Square root.
    fn sqrt(self) -> Self;

    /// Integer power `xⁿ` (supports negative exponents).
    fn powi(self, n: i32) -> Self;

    /// Absolute value. At 0 the derivative of the non-negative branch
    /// (i.e. `+1`) is propagated.
    fn abs(self) -> Self;

    /// Pairwise maximum. Ties propagate the left argument's derivative.
    fn max(self, other: Self) -> Self;

    /// Pairwise minimum. Ties propagate the left argument's derivative.
    fn min(self, other: Self) -> Self {
        -((-self).max(-other))
    }

    /// Rectified linear unit `max(x, 0)`.
    fn relu(self) -> Self {
        self.max(Self::from_f64(0.0))
    }

    /// Logistic sigmoid `1 / (1 + e⁻ˣ)`.
    fn sigmoid(self) -> Self {
        Self::from_f64(1.0) / (Self::from_f64(1.0) + (-self).exp())
    }

    /// Real power `x^p` for constant exponent, via `exp(p · ln x)`.
    ///
    /// Only defined for positive `x`, like `f64::powf` restricted to the
    /// differentiable domain.
    fn powf_const(self, p: f64) -> Self {
        (Self::from_f64(p) * self.ln()).exp()
    }
}

/// Lift a constant into any scalar type: `lit::<S>(2.0)`.
///
/// Sugar for `S::from_f64` at call sites inside generic function bodies.
pub fn lit<S: Scalar>(c: f64) -> S {
    S::from_f64(c)
}

impl Scalar for f64 {
    #[inline]
    fn from_f64(c: f64) -> Self {
        c
    }
    #[inline]
    fn value(&self) -> f64 {
        *self
    }
    #[inline]
    fn exp(self) -> Self {
        f64::exp(self)
    }
    #[inline]
    fn ln(self) -> Self {
        f64::ln(self)
    }
    #[inline]
    fn tanh(self) -> Self {
        f64::tanh(self)
    }
    #[inline]
    fn sin(self) -> Self {
        f64::sin(self)
    }
    #[inline]
    fn cos(self) -> Self {
        f64::cos(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn powi(self, n: i32) -> Self {
        f64::powi(self, n)
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_primitives() {
        assert_eq!(<f64 as Scalar>::from_f64(2.5), 2.5);
        assert_eq!(2.5f64.value(), 2.5);
        assert_eq!(Scalar::max(1.0, 2.0), 2.0);
        assert_eq!(Scalar::min(1.0f64, 2.0), 1.0);
        assert_eq!((-3.0f64).relu(), 0.0);
        assert_eq!(3.0f64.relu(), 3.0);
        assert!((0.0f64.sigmoid() - 0.5).abs() < 1e-15);
        assert!((2.0f64.powf_const(3.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn lit_helper() {
        let x: f64 = lit(4.0);
        assert_eq!(x, 4.0);
    }
}
