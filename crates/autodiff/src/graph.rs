//! Record-once / replay-many computation graphs for batched Hessians
//! and matrix-free Hessian-vector products.
//!
//! The tape in [`crate::Tape`] re-traces the monitored function from
//! scratch for every derivative query: a full Hessian via
//! forward-over-reverse costs `d` traces of `f`, each paying `RefCell`
//! borrows, node pushes, and fresh adjoint allocations. For the ADCD-X
//! eigenvalue search — dozens of Hessians per full sync — that tracing
//! overhead dominates.
//!
//! This module records the *op structure* of `f` once per evaluation
//! point into a flat [`GraphWorkspace`] arena and then replays a single
//! **batched** forward-over-reverse pass over the frozen graph carrying
//! all `d` seed tangents side by side ("lanes"), writing the Hessian
//! straight into a caller-owned matrix. Primal values, op dispatch, and
//! the adjoint-primal chain are shared across lanes — only the tangent
//! arithmetic is per-lane — and no allocation happens after the
//! workspace has warmed up. The same machinery replayed with a *single*
//! lane seeded by an arbitrary direction yields a Hessian-vector
//! product ([`GraphWorkspace::hvp_into`]) at O(graph) cost without ever
//! materializing the Hessian — the substrate for the Lanczos eigen
//! search.
//!
//! # Bit-identity contract
//!
//! The replay reproduces the results of the tape path **bit for bit**:
//! lane `j` performs exactly the scalar arithmetic that a `Tape<Dual>`
//! run seeded with tangent `e_j` performs, expanded from the `Var<Dual>`
//! token sequences (e.g. division computes `a * (1/b)` with the
//! reciprocal materialized first, because that is what `Var::div`
//! records; a subtraction's right partial carries the `-0.0` tangent of
//! `-one`), and the reverse sweep accumulates adjoints in the same
//! operand order as [`crate::Tape::gradient`]. Sharing the primal work
//! is sound because tangents never feed back into primals. The tests at
//! the bottom of this file assert exact `f64::to_bits` equality against
//! the tape-based Hessian across op coverage and probe points; the
//! ADCD parallel pipeline relies on this to keep `Parallelism` settings
//! protocol-equivalent.
//!
//! Functions whose recorded structure depends on the evaluation point —
//! `abs`/`max` branches (and thus `relu`/`min`) or data-dependent
//! control flow through [`Scalar::value`] — are detected during
//! recording and re-recorded at every new point; everything else is
//! recorded exactly once per workspace lifetime.

use crate::{Scalar, ScalarFn};
use automon_linalg::Matrix;
use std::cell::{Cell, RefCell};
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A graph operand: another node's output or an inline constant.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Operand {
    /// Index of the producing node.
    Var(u32),
    /// A free constant (never differentiated, mirroring constant `Var`s).
    Const(f64),
}

/// One recorded operation. Branches (`abs`, `max`) are resolved at
/// record time: the chosen side is baked into the opcode, which is valid
/// because replay happens at the same evaluation point.
#[derive(Debug, Clone, Copy)]
enum GOp {
    /// An independent input variable.
    Input,
    Add(Operand, Operand),
    Sub(Operand, Operand),
    Mul(Operand, Operand),
    Div(Operand, Operand),
    Neg(Operand),
    Exp(Operand),
    Ln(Operand),
    Tanh(Operand),
    Sin(Operand),
    Cos(Operand),
    Sqrt(Operand),
    Powi(Operand, i32),
    /// `abs` that took the non-negative branch.
    AbsPos(Operand),
    /// `abs` that took the negative branch.
    AbsNeg(Operand),
    /// `max` won by the left operand (ties go left, as in `Var::max`).
    MaxLeft(Operand, Operand),
    /// `max` won by the right operand.
    MaxRight(Operand, Operand),
}

impl GOp {
    /// Whether this op's opcode depends on the evaluation point.
    fn is_branch(&self) -> bool {
        matches!(
            self,
            GOp::AbsPos(_) | GOp::AbsNeg(_) | GOp::MaxLeft(..) | GOp::MaxRight(..)
        )
    }
}

/// Recording arena handed to the generic function body via [`GVar`]s.
struct GraphArena {
    nodes: RefCell<Vec<GOp>>,
    /// Set when user code observed a variable's primal through
    /// [`Scalar::value`] — the graph may then depend on the point through
    /// control flow we cannot see, so it must be re-recorded per point.
    value_observed: Cell<bool>,
}

impl GraphArena {
    fn push(&self, op: GOp) -> u32 {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(op);
        (nodes.len() - 1) as u32
    }

    fn var(&self, v: f64) -> GVar<'_> {
        GVar {
            arena: Some(self),
            idx: self.push(GOp::Input),
            v,
        }
    }
}

/// The recording scalar: carries the `f64` primal (which equals the
/// primal a `Tape<Dual>` run would carry, tangents never feed primals)
/// and appends opcodes to the arena.
struct GVar<'t> {
    arena: Option<&'t GraphArena>,
    idx: u32,
    v: f64,
}

impl Clone for GVar<'_> {
    fn clone(&self) -> Self {
        *self
    }
}
impl Copy for GVar<'_> {}

impl std::fmt::Debug for GVar<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GVar")
            .field("idx", &self.idx)
            .field("v", &self.v)
            .field("const", &self.arena.is_none())
            .finish()
    }
}

impl<'t> GVar<'t> {
    fn operand(&self) -> Operand {
        match self.arena {
            Some(_) => Operand::Var(self.idx),
            None => Operand::Const(self.v),
        }
    }

    /// Record a binary op, or fold to a constant when both operands are
    /// constants (exactly as `Var::binary` falls through to a tapeless
    /// `Var`). `v` must already follow the `Var` primal token sequence.
    fn binary(self, other: Self, v: f64, op: fn(Operand, Operand) -> GOp) -> Self {
        let arena = self.arena.or(other.arena);
        match arena {
            None => GVar {
                arena: None,
                idx: 0,
                v,
            },
            Some(t) => GVar {
                arena: Some(t),
                idx: t.push(op(self.operand(), other.operand())),
                v,
            },
        }
    }

    fn unary(self, v: f64, op: fn(Operand) -> GOp) -> Self {
        match self.arena {
            None => GVar {
                arena: None,
                idx: 0,
                v,
            },
            Some(t) => GVar {
                arena: Some(t),
                idx: t.push(op(Operand::Var(self.idx))),
                v,
            },
        }
    }
}

impl<'t> Add for GVar<'t> {
    type Output = Self;
    fn add(self, o: Self) -> Self {
        self.binary(o, self.v + o.v, GOp::Add)
    }
}

impl<'t> Sub for GVar<'t> {
    type Output = Self;
    fn sub(self, o: Self) -> Self {
        self.binary(o, self.v - o.v, GOp::Sub)
    }
}

impl<'t> Mul for GVar<'t> {
    type Output = Self;
    fn mul(self, o: Self) -> Self {
        self.binary(o, self.v * o.v, GOp::Mul)
    }
}

impl<'t> Div for GVar<'t> {
    type Output = Self;
    fn div(self, o: Self) -> Self {
        // `Var::div` materializes the reciprocal and multiplies —
        // `a * (1/b)` differs from `a / b` in the last ulp, so the primal
        // must mirror it.
        let inv = 1.0 / o.v;
        self.binary(o, self.v * inv, GOp::Div)
    }
}

impl<'t> Neg for GVar<'t> {
    type Output = Self;
    fn neg(self) -> Self {
        self.unary(-self.v, GOp::Neg)
    }
}

impl<'t> Scalar for GVar<'t> {
    fn from_f64(c: f64) -> Self {
        GVar {
            arena: None,
            idx: 0,
            v: c,
        }
    }

    fn value(&self) -> f64 {
        if let Some(t) = self.arena {
            t.value_observed.set(true);
        }
        self.v
    }

    fn exp(self) -> Self {
        self.unary(self.v.exp(), GOp::Exp)
    }

    fn ln(self) -> Self {
        self.unary(self.v.ln(), GOp::Ln)
    }

    fn tanh(self) -> Self {
        self.unary(self.v.tanh(), GOp::Tanh)
    }

    fn sin(self) -> Self {
        self.unary(self.v.sin(), GOp::Sin)
    }

    fn cos(self) -> Self {
        self.unary(self.v.cos(), GOp::Cos)
    }

    fn sqrt(self) -> Self {
        self.unary(self.v.sqrt(), GOp::Sqrt)
    }

    fn powi(self, n: i32) -> Self {
        match self.arena {
            None => GVar {
                arena: None,
                idx: 0,
                v: self.v.powi(n),
            },
            Some(t) => GVar {
                arena: Some(t),
                idx: t.push(GOp::Powi(Operand::Var(self.idx), n)),
                v: self.v.powi(n),
            },
        }
    }

    fn abs(self) -> Self {
        // Branch on the primal exactly like `Var::abs` (which compares
        // `self.v.value() >= 0.0`); NaN takes the negative branch there
        // and here alike.
        if self.v >= 0.0 {
            self.unary(self.v, GOp::AbsPos)
        } else {
            self.unary(-self.v, GOp::AbsNeg)
        }
    }

    fn max(self, other: Self) -> Self {
        if self.v >= other.v {
            self.binary(other, self.v, GOp::MaxLeft)
        } else {
            self.binary(other, other.v, GOp::MaxRight)
        }
    }
}

/// Where a local partial's tangent lanes live: a constant broadcast to
/// every lane (`Add`'s `one` has tangent `0.0`, `Sub`'s `-one` has
/// `-0.0` — the sign matters for bit-identity), the value tangents of an
/// already-computed node (`Mul` partials are the operand values, `Exp`'s
/// is its own output), or a scratch slot holding a freshly materialized
/// expression (`Div`, `Ln`, `Tanh`, …).
#[derive(Debug, Clone, Copy)]
enum Tan {
    Const(f64),
    Node(u32),
    Slot(u32),
}

/// Reusable arena for batched Hessian evaluation: record the graph of a
/// [`ScalarFn`] once per point, then replay one forward-over-reverse
/// pass carrying all `d` unit seed tangents into caller-owned storage.
pub struct GraphWorkspace {
    nodes: Vec<GOp>,
    /// Index of the output node of the last recording.
    out: usize,
    n_inputs: usize,
    /// Recording captured point-dependent structure (resolved branches or
    /// `value()` observations) and must be redone at each new point.
    point_dependent: bool,
    /// The point of the last recording (compared only when
    /// `point_dependent`).
    recorded_at: Vec<f64>,
    /// Per-node forward primal values (lane-independent).
    vals_v: Vec<f64>,
    /// Per-node forward value tangents, `n_inputs` lanes per node.
    lanes: Vec<f64>,
    /// Per-node local partial primals `[∂/∂a, ∂/∂b]`.
    part_v: Vec<[f64; 2]>,
    /// Per-node local partial tangent sources.
    part_t: Vec<[Tan; 2]>,
    /// Scratch lanes for [`Tan::Slot`] partials.
    slots: Vec<f64>,
    /// Reverse adjoint primals and tangent lanes.
    adj_v: Vec<f64>,
    adj_d: Vec<f64>,
    /// All-zero lane row standing in for constant operands' tangents.
    zero_lane: Vec<f64>,
}

impl Default for GraphWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl GraphWorkspace {
    /// An empty workspace; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            out: 0,
            n_inputs: 0,
            point_dependent: true,
            recorded_at: Vec::new(),
            vals_v: Vec::new(),
            lanes: Vec::new(),
            part_v: Vec::new(),
            part_t: Vec::new(),
            slots: Vec::new(),
            adj_v: Vec::new(),
            adj_d: Vec::new(),
            zero_lane: Vec::new(),
        }
    }

    /// Number of ops in the recorded graph (0 before the first record) —
    /// doubles as the op-count hint for sizing fresh tapes.
    pub fn op_count(&self) -> usize {
        self.nodes.len()
    }

    /// Record the computation graph of `f` at `x`.
    ///
    /// # Panics
    /// Panics if the output does not depend on the inputs (constant
    /// output), matching the tape's `gradient` contract.
    fn record<F: ScalarFn + ?Sized>(&mut self, f: &F, x: &[f64]) {
        let mut nodes = std::mem::take(&mut self.nodes);
        nodes.clear();
        let arena = GraphArena {
            nodes: RefCell::new(nodes),
            value_observed: Cell::new(false),
        };
        let vars: Vec<GVar<'_>> = x.iter().map(|&xi| arena.var(xi)).collect();
        let out = f.call(&vars);
        assert!(
            out.arena.is_some(),
            "gradient: output is a constant"
        );
        self.out = out.idx as usize;
        self.n_inputs = x.len();
        self.nodes = arena.nodes.into_inner();
        self.point_dependent =
            arena.value_observed.get() || self.nodes.iter().any(GOp::is_branch);
        self.recorded_at.clear();
        self.recorded_at.extend_from_slice(x);
    }

    /// The full symmetrized Hessian of `f` at `x`, written into `h`.
    ///
    /// Bit-identical to assembling `d` tape Hessian-vector products and
    /// symmetrizing (the [`crate::DifferentiableFn::hessian`] default).
    pub fn hessian_into<F: ScalarFn + ?Sized>(&mut self, f: &F, x: &[f64], h: &mut Matrix) {
        let d = f.dim();
        assert_eq!(x.len(), d, "hessian_into: dimension mismatch");
        assert_eq!(h.rows(), d, "hessian_into: output rows");
        assert_eq!(h.cols(), d, "hessian_into: output cols");
        self.ensure_recorded(f, x, d);
        self.replay(x, Seeds::Unit, h.as_mut_slice());
        h.symmetrize();
    }

    /// The Hessian-vector product `H(x)·v` of `f` at `x`, written into
    /// `out` — one single-lane replay instead of `d` lanes, so a probe
    /// costs O(graph) rather than O(d·graph) and the Hessian is never
    /// materialized. Bit-identical to [`crate::AutoDiffFn::hvp`] on the
    /// same point and direction (lane 0 computes exactly the `Dual`
    /// sequence a tape run seeded with `v` performs).
    pub fn hvp_into<F: ScalarFn + ?Sized>(&mut self, f: &F, x: &[f64], v: &[f64], out: &mut [f64]) {
        let d = f.dim();
        assert_eq!(x.len(), d, "hvp_into: dimension mismatch");
        assert_eq!(v.len(), d, "hvp_into: direction length");
        assert_eq!(out.len(), d, "hvp_into: output length");
        self.ensure_recorded(f, x, d);
        self.replay(x, Seeds::Vector(v), out);
    }

    /// Re-record iff the cached graph cannot serve (`f`, `x`): never
    /// recorded, dimension change, or point-dependent structure at a new
    /// point.
    fn ensure_recorded<F: ScalarFn + ?Sized>(&mut self, f: &F, x: &[f64], d: usize) {
        if self.nodes.is_empty()
            || self.n_inputs != d
            || (self.point_dependent && self.recorded_at != x)
        {
            self.record(f, x);
        }
    }

    /// One batched forward-over-reverse pass; the seed mode picks the
    /// lane count `d` (all `n_inputs` unit tangents for a Hessian, one
    /// arbitrary direction for an HVP) and `out` receives the
    /// `n_inputs × lanes` adjoint-tangent block row-major. Lane `j` of
    /// every tangent buffer computes the exact scalar sequence of a
    /// `Dual` replay seeded with that lane's seed — see the module docs
    /// for the contract.
    fn replay(&mut self, x: &[f64], seeds: Seeds<'_>, out: &mut [f64]) {
        let n = self.nodes.len();
        let d = match seeds {
            Seeds::Unit => self.n_inputs,
            Seeds::Vector(_) => 1,
        };
        let Self {
            nodes,
            vals_v,
            lanes,
            part_v,
            part_t,
            slots,
            zero_lane,
            adj_v,
            adj_d,
            ..
        } = self;
        vals_v.clear();
        vals_v.resize(n, 0.0);
        lanes.clear();
        lanes.resize(n * d, 0.0);
        part_v.clear();
        part_v.resize(n, [0.0; 2]);
        part_t.clear();
        part_t.resize(n, [Tan::Const(0.0); 2]);
        slots.clear();
        zero_lane.clear();
        zero_lane.resize(d, 0.0);

        // Operand → (primal, value-tangent lanes). Operand indices always
        // precede the consuming node, so their rows live in `prev`.
        fn res<'a>(
            o: Operand,
            vals_v: &[f64],
            prev: &'a [f64],
            zero: &'a [f64],
            d: usize,
        ) -> (f64, &'a [f64]) {
            match o {
                Operand::Var(k) => {
                    let k = k as usize;
                    (vals_v[k], &prev[k * d..(k + 1) * d])
                }
                Operand::Const(c) => (c, zero),
            }
        }
        // Operand → tangent source for a `Mul`-style partial (the partial
        // *is* the operand value, so its tangents are that node's lanes;
        // constants have the zero tangent of `Dual::from_f64`).
        fn tan_of(o: Operand) -> Tan {
            match o {
                Operand::Var(k) => Tan::Node(k),
                Operand::Const(_) => Tan::Const(0.0),
            }
        }

        // Forward pass: primal once per node, tangents per lane, in the
        // exact `Var<Dual>` token sequences.
        let mut input = 0usize;
        for i in 0..n {
            let (prev, rest) = lanes.split_at_mut(i * d);
            let prev = &prev[..];
            let row = &mut rest[..d];
            match nodes[i] {
                GOp::Input => {
                    vals_v[i] = x[input];
                    match seeds {
                        Seeds::Unit => {
                            for (l, r) in row.iter_mut().enumerate() {
                                *r = if l == input { 1.0 } else { 0.0 };
                            }
                        }
                        Seeds::Vector(v) => row[0] = v[input],
                    }
                    input += 1;
                }
                GOp::Add(a, b) => {
                    let (av, at) = res(a, vals_v, prev, zero_lane, d);
                    let (bv, bt) = res(b, vals_v, prev, zero_lane, d);
                    vals_v[i] = av + bv;
                    for l in 0..d {
                        row[l] = at[l] + bt[l];
                    }
                    part_v[i] = [1.0, 1.0];
                }
                GOp::Sub(a, b) => {
                    let (av, at) = res(a, vals_v, prev, zero_lane, d);
                    let (bv, bt) = res(b, vals_v, prev, zero_lane, d);
                    vals_v[i] = av - bv;
                    for l in 0..d {
                        row[l] = at[l] - bt[l];
                    }
                    part_v[i] = [1.0, -1.0];
                    // `-one` carries a `-0.0` tangent (negated zero).
                    part_t[i] = [Tan::Const(0.0), Tan::Const(-0.0)];
                }
                GOp::Mul(a, b) => {
                    let (av, at) = res(a, vals_v, prev, zero_lane, d);
                    let (bv, bt) = res(b, vals_v, prev, zero_lane, d);
                    vals_v[i] = av * bv;
                    for l in 0..d {
                        row[l] = at[l] * bv + av * bt[l];
                    }
                    part_v[i] = [bv, av];
                    part_t[i] = [tan_of(b), tan_of(a)];
                }
                GOp::Div(a, b) => {
                    let (av, at) = res(a, vals_v, prev, zero_lane, d);
                    let (bv, bt) = res(b, vals_v, prev, zero_lane, d);
                    // inv = one / bv; value = av * inv; pb = -av*inv*inv.
                    let inv_v = 1.0 / bv;
                    let s0 = slots.len();
                    slots.resize(s0 + 2 * d, 0.0);
                    for l in 0..d {
                        slots[s0 + l] = (0.0 * bv - 1.0 * bt[l]) / (bv * bv);
                    }
                    vals_v[i] = av * inv_v;
                    let m1_v = (-av) * inv_v;
                    for l in 0..d {
                        let inv_d = slots[s0 + l];
                        row[l] = at[l] * inv_v + av * inv_d;
                        let m1_d = (-at[l]) * inv_v + (-av) * inv_d;
                        slots[s0 + d + l] = m1_d * inv_v + m1_v * inv_d;
                    }
                    part_v[i] = [inv_v, m1_v * inv_v];
                    part_t[i] = [
                        Tan::Slot((s0 / d) as u32),
                        Tan::Slot((s0 / d + 1) as u32),
                    ];
                }
                GOp::Neg(a) => {
                    let (av, at) = res(a, vals_v, prev, zero_lane, d);
                    vals_v[i] = -av;
                    for l in 0..d {
                        row[l] = -at[l];
                    }
                    part_v[i] = [-1.0, 0.0];
                }
                GOp::Exp(a) => {
                    let (av, at) = res(a, vals_v, prev, zero_lane, d);
                    let e_v = av.exp();
                    vals_v[i] = e_v;
                    for l in 0..d {
                        row[l] = at[l] * e_v;
                    }
                    // pa is the output itself.
                    part_v[i] = [e_v, 0.0];
                    part_t[i] = [Tan::Node(i as u32), Tan::Const(0.0)];
                }
                GOp::Ln(a) => {
                    let (av, at) = res(a, vals_v, prev, zero_lane, d);
                    vals_v[i] = av.ln();
                    let s0 = slots.len();
                    slots.resize(s0 + d, 0.0);
                    // pa = one / av.
                    for l in 0..d {
                        row[l] = at[l] / av;
                        slots[s0 + l] = (0.0 * av - 1.0 * at[l]) / (av * av);
                    }
                    part_v[i] = [1.0 / av, 0.0];
                    part_t[i] = [Tan::Slot((s0 / d) as u32), Tan::Const(0.0)];
                }
                GOp::Tanh(a) => {
                    let (av, at) = res(a, vals_v, prev, zero_lane, d);
                    let t_v = av.tanh();
                    vals_v[i] = t_v;
                    let s0 = slots.len();
                    slots.resize(s0 + d, 0.0);
                    // pa = one - t*t, with t's tangent in `row`.
                    for l in 0..d {
                        row[l] = at[l] * (1.0 - t_v * t_v);
                        slots[s0 + l] = 0.0 - (row[l] * t_v + t_v * row[l]);
                    }
                    part_v[i] = [1.0 - t_v * t_v, 0.0];
                    part_t[i] = [Tan::Slot((s0 / d) as u32), Tan::Const(0.0)];
                }
                GOp::Sin(a) => {
                    let (av, at) = res(a, vals_v, prev, zero_lane, d);
                    vals_v[i] = av.sin();
                    let s0 = slots.len();
                    slots.resize(s0 + d, 0.0);
                    // pa = av.cos().
                    for l in 0..d {
                        row[l] = at[l] * av.cos();
                        slots[s0 + l] = -at[l] * av.sin();
                    }
                    part_v[i] = [av.cos(), 0.0];
                    part_t[i] = [Tan::Slot((s0 / d) as u32), Tan::Const(0.0)];
                }
                GOp::Cos(a) => {
                    let (av, at) = res(a, vals_v, prev, zero_lane, d);
                    vals_v[i] = av.cos();
                    let s0 = slots.len();
                    slots.resize(s0 + d, 0.0);
                    // pa = -av.sin().
                    for l in 0..d {
                        row[l] = -at[l] * av.sin();
                        slots[s0 + l] = -(at[l] * av.cos());
                    }
                    part_v[i] = [-av.sin(), 0.0];
                    part_t[i] = [Tan::Slot((s0 / d) as u32), Tan::Const(0.0)];
                }
                GOp::Sqrt(a) => {
                    let (av, at) = res(a, vals_v, prev, zero_lane, d);
                    let s_v = av.sqrt();
                    vals_v[i] = s_v;
                    let s0 = slots.len();
                    slots.resize(s0 + d, 0.0);
                    // pa = Dual::from_f64(0.5) / s, with s's tangent in `row`.
                    for l in 0..d {
                        row[l] = at[l] * 0.5 / s_v;
                        slots[s0 + l] = (0.0 * s_v - 0.5 * row[l]) / (s_v * s_v);
                    }
                    part_v[i] = [0.5 / s_v, 0.0];
                    part_t[i] = [Tan::Slot((s0 / d) as u32), Tan::Const(0.0)];
                }
                GOp::Powi(a, p) => {
                    let (av, at) = res(a, vals_v, prev, zero_lane, d);
                    vals_v[i] = av.powi(p);
                    let s0 = slots.len();
                    slots.resize(s0 + d, 0.0);
                    // pa = Dual::from_f64(p) * av.powi(p - 1).
                    let q_v = av.powi(p - 1);
                    for l in 0..d {
                        row[l] = at[l] * f64::from(p) * q_v;
                        let q_d = at[l] * f64::from(p - 1) * av.powi(p - 2);
                        slots[s0 + l] = 0.0 * q_v + f64::from(p) * q_d;
                    }
                    part_v[i] = [f64::from(p) * q_v, 0.0];
                    part_t[i] = [Tan::Slot((s0 / d) as u32), Tan::Const(0.0)];
                }
                GOp::AbsPos(a) => {
                    let (av, at) = res(a, vals_v, prev, zero_lane, d);
                    vals_v[i] = av;
                    row.copy_from_slice(at);
                    part_v[i] = [1.0, 0.0];
                }
                GOp::AbsNeg(a) => {
                    let (av, at) = res(a, vals_v, prev, zero_lane, d);
                    vals_v[i] = -av;
                    for l in 0..d {
                        row[l] = -at[l];
                    }
                    part_v[i] = [-1.0, 0.0];
                }
                GOp::MaxLeft(a, _) => {
                    let (av, at) = res(a, vals_v, prev, zero_lane, d);
                    vals_v[i] = av;
                    row.copy_from_slice(at);
                    part_v[i] = [1.0, 0.0];
                }
                GOp::MaxRight(_, b) => {
                    let (bv, bt) = res(b, vals_v, prev, zero_lane, d);
                    vals_v[i] = bv;
                    row.copy_from_slice(bt);
                    part_v[i] = [0.0, 1.0];
                }
            }
        }

        // Reverse sweep, accumulating in the tape's operand order: the
        // `self` partial first, then `other`, skipping constants —
        // exactly `Tape::gradient`'s compacted-parent order. Each
        // accumulation mirrors `adj[p] = adj[p] + partial * a` in Dual
        // arithmetic: primal once, tangents per lane.
        adj_v.clear();
        adj_v.resize(n, 0.0);
        adj_d.clear();
        adj_d.resize(n * d, 0.0);
        adj_v[self.out] = 1.0;
        for i in (0..=self.out).rev() {
            let (aprev, arest) = adj_d.split_at_mut(i * d);
            let a_row = &arest[..d];
            let a_v = adj_v[i];
            let [pav, pbv] = part_v[i];
            let [pat, pbt] = part_t[i];
            let mut accumulate = |aprev: &mut [f64], p: u32, pv: f64, pt: Tan| {
                let p = p as usize;
                adj_v[p] += pv * a_v;
                let dst = &mut aprev[p * d..(p + 1) * d];
                match pt {
                    Tan::Const(c) => {
                        for (l, t) in dst.iter_mut().enumerate() {
                            *t += c * a_v + pv * a_row[l];
                        }
                    }
                    Tan::Node(k) => {
                        let k = k as usize;
                        let src = &lanes[k * d..(k + 1) * d];
                        for (l, t) in dst.iter_mut().enumerate() {
                            *t += src[l] * a_v + pv * a_row[l];
                        }
                    }
                    Tan::Slot(s) => {
                        let s = s as usize;
                        let src = &slots[s * d..(s + 1) * d];
                        for (l, t) in dst.iter_mut().enumerate() {
                            *t += src[l] * a_v + pv * a_row[l];
                        }
                    }
                }
            };
            match nodes[i] {
                GOp::Input => {}
                GOp::Add(oa, ob)
                | GOp::Sub(oa, ob)
                | GOp::Mul(oa, ob)
                | GOp::Div(oa, ob)
                | GOp::MaxLeft(oa, ob)
                | GOp::MaxRight(oa, ob) => {
                    if let Operand::Var(p) = oa {
                        accumulate(aprev, p, pav, pat);
                    }
                    if let Operand::Var(p) = ob {
                        accumulate(aprev, p, pbv, pbt);
                    }
                }
                GOp::Neg(oa)
                | GOp::Exp(oa)
                | GOp::Ln(oa)
                | GOp::Tanh(oa)
                | GOp::Sin(oa)
                | GOp::Cos(oa)
                | GOp::Sqrt(oa)
                | GOp::Powi(oa, _)
                | GOp::AbsPos(oa)
                | GOp::AbsNeg(oa) => {
                    if let Operand::Var(p) = oa {
                        accumulate(aprev, p, pav, pat);
                    }
                }
            }
        }

        out.copy_from_slice(&adj_d[..self.n_inputs * d]);
    }
}

/// Seed tangents for a replay: one unit lane per input (full Hessian)
/// or a single lane carrying an arbitrary direction (HVP).
#[derive(Clone, Copy)]
enum Seeds<'a> {
    Unit,
    Vector(&'a [f64]),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AutoDiffFn, DifferentiableFn};

    fn assert_bit_identical<F: ScalarFn>(f: F, points: &[Vec<f64>]) {
        let d = f.dim();
        let wrapped = AutoDiffFn::new(f);
        let mut ws = GraphWorkspace::new();
        let mut h = Matrix::zeros(d, d);
        for x in points {
            let reference = DifferentiableFn::hessian(&wrapped, x);
            ws.hessian_into(wrapped.inner(), x, &mut h);
            for i in 0..d {
                for jj in 0..d {
                    assert_eq!(
                        h[(i, jj)].to_bits(),
                        reference[(i, jj)].to_bits(),
                        "H[{i},{jj}] at {x:?}: graph {} vs tape {}",
                        h[(i, jj)],
                        reference[(i, jj)]
                    );
                }
            }
        }
    }

    struct Poly;
    impl ScalarFn for Poly {
        fn dim(&self) -> usize {
            3
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            // Mixed products, constants on both sides, powi, neg.
            x[0] * x[0] * x[1] - S::from_f64(3.0) * x[2].powi(3)
                + x[1] * S::from_f64(0.7)
                + (-x[0]) * x[2]
        }
    }

    struct DivLog;
    impl ScalarFn for DivLog {
        fn dim(&self) -> usize {
            2
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            // KLD-style: division (the `a * (1/b)` token sequence) + ln.
            x[0] * (x[0] / x[1]).ln() + x[1] / S::from_f64(2.0) + S::from_f64(1.0) / x[0]
        }
    }

    struct Transcendental;
    impl ScalarFn for Transcendental {
        fn dim(&self) -> usize {
            2
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            x[0].sin() * x[1].exp() + (x[0] * x[1]).cos() + x[1].tanh().sqrt()
                + x[0].sigmoid()
                + (x[0] * x[0] + S::from_f64(1.0)).powf_const(0.3)
        }
    }

    struct Branchy;
    impl ScalarFn for Branchy {
        fn dim(&self) -> usize {
            2
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            // relu/max/min/abs resolve branches at record time.
            (x[0] * x[1]).relu() + x[0].abs() * x[1] + Scalar::max(x[0], x[1]) * x[0]
                + Scalar::min(x[0] * x[0], x[1])
        }
    }

    struct ValueBranch;
    impl ScalarFn for ValueBranch {
        fn dim(&self) -> usize {
            2
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            // Data-dependent control flow through `value()`.
            if x[0].value() > 0.5 {
                x[0] * x[0] * x[1]
            } else {
                x[1] * x[1].exp()
            }
        }
    }

    #[test]
    fn polynomial_bit_identical() {
        assert_bit_identical(
            Poly,
            &[
                vec![0.3, -0.8, 1.7],
                vec![1.0, 2.0, 3.0],
                vec![-0.137, 0.952, -2.5],
            ],
        );
    }

    #[test]
    fn division_and_log_bit_identical() {
        assert_bit_identical(DivLog, &[vec![0.3, 0.8], vec![1.7, 0.21], vec![2.9, 5.3]]);
    }

    #[test]
    fn transcendentals_bit_identical() {
        assert_bit_identical(
            Transcendental,
            &[vec![0.4, 0.9], vec![-1.3, 0.08], vec![2.2, 1.6]],
        );
    }

    #[test]
    fn branches_bit_identical_and_rerecorded() {
        // Points on both sides of every branch.
        assert_bit_identical(
            Branchy,
            &[
                vec![0.5, 0.25],
                vec![-0.5, 0.25],
                vec![0.5, -0.9],
                vec![-0.7, -0.2],
            ],
        );
    }

    #[test]
    fn value_observation_forces_rerecord() {
        assert_bit_identical(ValueBranch, &[vec![0.9, 0.4], vec![0.1, 0.4]]);
        // And the workspace marks itself point-dependent.
        let mut ws = GraphWorkspace::new();
        let mut h = Matrix::zeros(2, 2);
        ws.hessian_into(&ValueBranch, &[0.9, 0.4], &mut h);
        assert!(ws.point_dependent);
    }

    #[test]
    fn branch_free_graph_recorded_once() {
        let mut ws = GraphWorkspace::new();
        let mut h = Matrix::zeros(3, 3);
        ws.hessian_into(&Poly, &[0.1, 0.2, 0.3], &mut h);
        assert!(!ws.point_dependent);
        let ops = ws.op_count();
        assert!(ops > 0);
        // A second point must not re-record (same op count, same arena).
        ws.hessian_into(&Poly, &[0.9, -0.4, 0.5], &mut h);
        assert_eq!(ws.op_count(), ops);
    }

    fn assert_hvp_bit_identical<F: ScalarFn>(f: F, points: &[Vec<f64>]) {
        let d = f.dim();
        let wrapped = AutoDiffFn::new(f);
        let mut ws = GraphWorkspace::new();
        let mut out = vec![0.0; d];
        for (k, x) in points.iter().enumerate() {
            // A deterministic non-axis direction per point.
            let v: Vec<f64> = (0..d)
                .map(|i| 0.3 + 0.7 * i as f64 - 0.11 * k as f64)
                .collect();
            let reference = wrapped.hvp(x, &v);
            ws.hvp_into(wrapped.inner(), x, &v, &mut out);
            for i in 0..d {
                assert_eq!(
                    out[i].to_bits(),
                    reference[i].to_bits(),
                    "hvp[{i}] at {x:?}: graph {} vs tape {}",
                    out[i],
                    reference[i]
                );
            }
        }
    }

    #[test]
    fn hvp_bit_identical_across_op_coverage() {
        assert_hvp_bit_identical(
            Poly,
            &[vec![0.3, -0.8, 1.7], vec![-0.137, 0.952, -2.5]],
        );
        assert_hvp_bit_identical(DivLog, &[vec![0.3, 0.8], vec![1.7, 0.21]]);
        assert_hvp_bit_identical(Transcendental, &[vec![0.4, 0.9], vec![2.2, 1.6]]);
        assert_hvp_bit_identical(
            Branchy,
            &[vec![0.5, 0.25], vec![-0.5, 0.25], vec![-0.7, -0.2]],
        );
        assert_hvp_bit_identical(ValueBranch, &[vec![0.9, 0.4], vec![0.1, 0.4]]);
    }

    #[test]
    fn hvp_and_hessian_share_one_recording() {
        let mut ws = GraphWorkspace::new();
        let mut h = Matrix::zeros(3, 3);
        let mut out = vec![0.0; 3];
        ws.hessian_into(&Poly, &[0.1, 0.2, 0.3], &mut h);
        let ops = ws.op_count();
        // Interleaved HVPs at other points reuse the same graph.
        ws.hvp_into(&Poly, &[0.9, -0.4, 0.5], &[1.0, 0.0, 2.0], &mut out);
        ws.hvp_into(&Poly, &[0.2, 0.2, 0.2], &[0.5, -1.0, 0.0], &mut out);
        assert_eq!(ws.op_count(), ops);
        // And the HVP matches H·v from the full Hessian (same quadratic
        // graph, so equality is exact up to symmetrization).
        ws.hessian_into(&Poly, &[0.2, 0.2, 0.2], &mut h);
        let hv = h.matvec(&[0.5, -1.0, 0.0]);
        ws.hvp_into(&Poly, &[0.2, 0.2, 0.2], &[0.5, -1.0, 0.0], &mut out);
        for i in 0..3 {
            assert!((out[i] - hv[i]).abs() < 1e-12, "{} vs {}", out[i], hv[i]);
        }
    }

    #[test]
    #[should_panic(expected = "output is a constant")]
    fn constant_output_panics() {
        struct ConstOut;
        impl ScalarFn for ConstOut {
            fn dim(&self) -> usize {
                1
            }
            fn call<S: Scalar>(&self, _x: &[S]) -> S {
                S::from_f64(4.0)
            }
        }
        let mut ws = GraphWorkspace::new();
        let mut h = Matrix::zeros(1, 1);
        ws.hessian_into(&ConstOut, &[0.0], &mut h);
    }
}
