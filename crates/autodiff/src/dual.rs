//! Forward-mode dual numbers.

use crate::Scalar;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A forward-mode dual number `v + d·ε` with `ε² = 0`.
///
/// Carrying a single tangent direction, `Dual` computes directional
/// derivatives in one pass. Its main role in AutoMon is as the *value type
/// of a reverse tape* (`Tape<Dual>`): seeding the input tangents with a
/// direction `v` and back-propagating yields the Hessian-vector product
/// `H·v` (forward-over-reverse), from which full Hessians are assembled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dual {
    /// Primal value.
    pub v: f64,
    /// Tangent (directional derivative).
    pub d: f64,
}

impl Dual {
    /// A dual with the given primal and tangent.
    pub fn new(v: f64, d: f64) -> Self {
        Self { v, d }
    }

    /// A constant (zero tangent).
    pub fn constant(v: f64) -> Self {
        Self { v, d: 0.0 }
    }

    /// A seeded variable (unit tangent).
    pub fn variable(v: f64) -> Self {
        Self { v, d: 1.0 }
    }
}

impl Add for Dual {
    type Output = Dual;
    #[inline]
    fn add(self, o: Dual) -> Dual {
        Dual::new(self.v + o.v, self.d + o.d)
    }
}

impl Sub for Dual {
    type Output = Dual;
    #[inline]
    fn sub(self, o: Dual) -> Dual {
        Dual::new(self.v - o.v, self.d - o.d)
    }
}

impl Mul for Dual {
    type Output = Dual;
    #[inline]
    fn mul(self, o: Dual) -> Dual {
        Dual::new(self.v * o.v, self.d * o.v + self.v * o.d)
    }
}

impl Div for Dual {
    type Output = Dual;
    #[inline]
    fn div(self, o: Dual) -> Dual {
        Dual::new(self.v / o.v, (self.d * o.v - self.v * o.d) / (o.v * o.v))
    }
}

impl Neg for Dual {
    type Output = Dual;
    #[inline]
    fn neg(self) -> Dual {
        Dual::new(-self.v, -self.d)
    }
}

impl Scalar for Dual {
    #[inline]
    fn from_f64(c: f64) -> Self {
        Dual::constant(c)
    }

    #[inline]
    fn value(&self) -> f64 {
        self.v
    }

    #[inline]
    fn exp(self) -> Self {
        let e = self.v.exp();
        Dual::new(e, self.d * e)
    }

    #[inline]
    fn ln(self) -> Self {
        Dual::new(self.v.ln(), self.d / self.v)
    }

    #[inline]
    fn tanh(self) -> Self {
        let t = self.v.tanh();
        Dual::new(t, self.d * (1.0 - t * t))
    }

    #[inline]
    fn sin(self) -> Self {
        Dual::new(self.v.sin(), self.d * self.v.cos())
    }

    #[inline]
    fn cos(self) -> Self {
        Dual::new(self.v.cos(), -self.d * self.v.sin())
    }

    #[inline]
    fn sqrt(self) -> Self {
        let s = self.v.sqrt();
        Dual::new(s, self.d * 0.5 / s)
    }

    #[inline]
    fn powi(self, n: i32) -> Self {
        Dual::new(
            self.v.powi(n),
            self.d * f64::from(n) * self.v.powi(n - 1),
        )
    }

    #[inline]
    fn abs(self) -> Self {
        if self.v >= 0.0 {
            self
        } else {
            -self
        }
    }

    #[inline]
    fn max(self, other: Self) -> Self {
        if self.v >= other.v {
            self
        } else {
            other
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(v: f64) -> Dual {
        Dual::variable(v)
    }

    #[test]
    fn arithmetic_rules() {
        let x = d(3.0);
        let y = Dual::constant(2.0);
        assert_eq!((x + y).d, 1.0);
        assert_eq!((x - y).d, 1.0);
        assert_eq!((x * y).d, 2.0); // d/dx (2x) = 2
        assert_eq!((y / x).d, -2.0 / 9.0); // d/dx (2/x) = -2/x²
        assert_eq!((-x).d, -1.0);
    }

    #[test]
    fn product_rule() {
        let x = d(5.0);
        let y = x * x; // x², derivative 2x = 10
        assert_eq!(y.v, 25.0);
        assert_eq!(y.d, 10.0);
    }

    #[test]
    fn transcendental_derivatives() {
        let x = d(0.7);
        assert!((x.exp().d - 0.7f64.exp()).abs() < 1e-15);
        assert!((x.ln().d - 1.0 / 0.7).abs() < 1e-15);
        assert!((x.sin().d - 0.7f64.cos()).abs() < 1e-15);
        assert!((x.cos().d + 0.7f64.sin()).abs() < 1e-15);
        let t = 0.7f64.tanh();
        assert!((x.tanh().d - (1.0 - t * t)).abs() < 1e-15);
        assert!((x.sqrt().d - 0.5 / 0.7f64.sqrt()).abs() < 1e-15);
        assert!((x.powi(3).d - 3.0 * 0.49).abs() < 1e-12);
    }

    #[test]
    fn nonsmooth_branches() {
        assert_eq!(d(-2.0).abs().d, -1.0);
        assert_eq!(d(2.0).abs().d, 1.0);
        assert_eq!(d(0.0).abs().d, 1.0); // tie: non-negative branch
        assert_eq!(d(3.0).relu().d, 1.0);
        assert_eq!(d(-3.0).relu().d, 0.0);
    }

    #[test]
    fn max_propagates_winning_tangent() {
        let a = Dual::new(1.0, 10.0);
        let b = Dual::new(2.0, 20.0);
        assert_eq!(Scalar::max(a, b).d, 20.0);
        assert_eq!(Scalar::max(b, a).d, 20.0);
        assert_eq!(Scalar::min(a, b).d, 10.0);
    }

    #[test]
    fn sigmoid_derivative() {
        let x = d(0.3);
        let s = 1.0 / (1.0 + (-0.3f64).exp());
        let g = x.sigmoid();
        assert!((g.v - s).abs() < 1e-15);
        assert!((g.d - s * (1.0 - s)).abs() < 1e-12);
    }
}
