//! §4.4 coordinator runtime: full-sync cost. ADCD-X is dominated by the
//! extreme-eigenvalue search and grows with dimension; ADCD-E performs
//! its eigendecomposition once, so full syncs stay cheap and flat.

use automon_core::{adcd, EigenSearch, MonitorConfig, NeighborhoodBox, Parallelism};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn cfg(par: Parallelism) -> MonitorConfig {
    MonitorConfig::builder(0.1)
        .eigen_search(EigenSearch {
            probes: 4,
            nm_iters: 12,
            seed: 2,
            ..Default::default()
        })
        .parallelism(par)
        .build()
}

fn bench_full_sync(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_sync_decompose");
    group.sample_size(10);

    // ADCD-X on KLD (non-constant Hessian): λ search over the box.
    // `adcd_x_kld` runs the default (batched, machine-sized) pipeline;
    // `adcd_x_kld_seq` pins the sequential reference path — the pair
    // measures the hot-path speedup at identical results.
    for d in [10usize, 20, 40] {
        let bench = automon_bench::funcs::kld(d, 2, 30, 1);
        let x0 = vec![1.0 / d as f64; d];
        let b = NeighborhoodBox {
            lo: x0.iter().map(|v| (v - 0.05).max(0.0)).collect(),
            hi: x0.iter().map(|v| (v + 0.05).min(1.0)).collect(),
        };
        for (name, par) in [
            ("adcd_x_kld", Parallelism::Auto),
            ("adcd_x_kld_seq", Parallelism::Sequential),
        ] {
            let cfg = cfg(par);
            group.bench_with_input(BenchmarkId::new(name, d), &d, |bch, _| {
                bch.iter(|| {
                    std::hint::black_box(adcd::decompose(
                        bench.f.as_ref(),
                        std::hint::black_box(&x0),
                        Some(&b),
                        &cfg,
                    ))
                })
            });
        }
    }

    // ADCD-E on the inner product: one eigendecomposition.
    for d in [10usize, 40, 100] {
        let bench = automon_bench::funcs::inner_product(d, 2, 30, 1);
        let x0 = vec![0.1; d];
        let cfg = cfg(Parallelism::Auto);
        group.bench_with_input(BenchmarkId::new("adcd_e_inner_product", d), &d, |bch, _| {
            bch.iter(|| {
                std::hint::black_box(adcd::decompose(
                    bench.f.as_ref(),
                    std::hint::black_box(&x0),
                    None,
                    &cfg,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_sync);
criterion_main!(benches);
