//! Telemetry overhead on the ADCD hot path (DESIGN §3.9).
//!
//! `decompose_bare` is the exact `full_sync_decompose/adcd_x_kld`
//! configuration from `coordinator_full_sync.rs`; `decompose_disabled_tel`
//! routes through `decompose_observed` with `Telemetry::disabled()` — the
//! zero-overhead claim CI enforces (`scripts/ci.sh`, BENCH_SMOKE_TOLERANCE)
//! — and `decompose_enabled_tel` prices live counters + one trace event
//! per decomposition. The micro group isolates the per-call primitives.

use automon_core::{adcd, EigenSearch, MonitorConfig, NeighborhoodBox, Parallelism};
use automon_obs::Telemetry;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn cfg() -> MonitorConfig {
    MonitorConfig::builder(0.1)
        .eigen_search(EigenSearch {
            probes: 4,
            nm_iters: 12,
            seed: 2,
            ..Default::default()
        })
        .parallelism(Parallelism::Auto)
        .build()
}

fn bench_decompose_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);

    for d in [10usize, 40] {
        let bench = automon_bench::funcs::kld(d, 2, 30, 1);
        let x0 = vec![1.0 / d as f64; d];
        let b = NeighborhoodBox {
            lo: x0.iter().map(|v| (v - 0.05).max(0.0)).collect(),
            hi: x0.iter().map(|v| (v + 0.05).min(1.0)).collect(),
        };
        let cfg = cfg();

        group.bench_with_input(BenchmarkId::new("decompose_bare", d), &d, |bch, _| {
            bch.iter(|| {
                std::hint::black_box(adcd::decompose(
                    bench.f.as_ref(),
                    std::hint::black_box(&x0),
                    Some(&b),
                    &cfg,
                ))
            })
        });

        let disabled = Telemetry::disabled();
        group.bench_with_input(
            BenchmarkId::new("decompose_disabled_tel", d),
            &d,
            |bch, _| {
                bch.iter(|| {
                    std::hint::black_box(adcd::decompose_observed(
                        bench.f.as_ref(),
                        std::hint::black_box(&x0),
                        Some(&b),
                        &cfg,
                        &disabled,
                    ))
                })
            },
        );

        let enabled = Telemetry::enabled();
        group.bench_with_input(
            BenchmarkId::new("decompose_enabled_tel", d),
            &d,
            |bch, _| {
                bch.iter(|| {
                    std::hint::black_box(adcd::decompose_observed(
                        bench.f.as_ref(),
                        std::hint::black_box(&x0),
                        Some(&b),
                        &cfg,
                        &enabled,
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_primitives");
    group.sample_size(10);

    let disabled = Telemetry::disabled();
    let enabled = Telemetry::enabled();
    let c_off = disabled.counter("bench_ops_total", "disabled counter");
    let c_on = enabled.counter("bench_ops_total", "live counter");
    let h_on = enabled.histogram("bench_obs", "live histogram", &[0.5, 5.0, 50.0]);

    group.bench_function("counter_inc_disabled/1", |bch| bch.iter(|| c_off.inc()));
    group.bench_function("counter_inc_enabled/1", |bch| bch.iter(|| c_on.inc()));
    group.bench_function("histogram_observe/1", |bch| {
        bch.iter(|| h_on.observe(std::hint::black_box(3.7)))
    });
    group.bench_function("event_disabled/1", |bch| {
        bch.iter(|| disabled.event("noop", &[("x", 1u64.into())]))
    });
    group.bench_function("event_enabled/1", |bch| {
        bch.iter(|| enabled.event("tick", &[("x", 1u64.into())]))
    });
    group.bench_function("span_disabled/1", |bch| {
        bch.iter(|| {
            let s = disabled.span_begin("noop", automon_obs::SpanId::NONE, &[]);
            disabled.span_end(s, &[]);
        })
    });
    group.bench_function("span_enabled/1", |bch| {
        bch.iter(|| {
            let s = enabled.span_begin("tick", automon_obs::SpanId::NONE, &[("x", 1u64.into())]);
            enabled.span_end(s, &[]);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_decompose_overhead, bench_primitives);
criterion_main!(benches);
