//! Microbenchmarks of the substrates: AD gradients/Hessians, the
//! spectral kernels (QL default, Jacobi oracle, matrix-free Lanczos
//! extremes), the box-constrained optimizer, and the wire codec.

use automon_autodiff::{AutoDiffFn, Scalar, ScalarFn};
use automon_core::{CoordinatorMessage, Curvature, DcKind, NodeMessage, SafeZone, ViolationKind};
use automon_linalg::{
    JacobiOptions, LanczosOptions, LanczosStats, LanczosWorkspace, Matrix, MatrixOperator,
    RitzSide, SymEigen,
};
use automon_net::wire;
use automon_opt::{minimize_box, Bounds, OptimizeOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

struct LogSumExp {
    d: usize,
}
impl ScalarFn for LogSumExp {
    fn dim(&self) -> usize {
        self.d
    }
    fn call<S: Scalar>(&self, x: &[S]) -> S {
        let mut acc = S::from_f64(0.0);
        for &xi in x {
            acc = acc + xi.exp();
        }
        acc.ln()
    }
}

fn bench_autodiff(c: &mut Criterion) {
    let mut group = c.benchmark_group("autodiff");
    for d in [10usize, 40, 100] {
        let f = AutoDiffFn::new(LogSumExp { d });
        let x = vec![0.01; d];
        group.bench_with_input(BenchmarkId::new("gradient", d), &d, |b, _| {
            b.iter(|| std::hint::black_box(f.grad(std::hint::black_box(&x))))
        });
        group.bench_with_input(BenchmarkId::new("hessian", d), &d, |b, _| {
            b.iter(|| std::hint::black_box(f.hessian(std::hint::black_box(&x))))
        });
    }
    group.finish();
}

fn random_sym(d: usize) -> Matrix {
    let mut seed = 1u64;
    let mut next = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    let mut m = Matrix::from_fn(d, d, |_, _| next());
    m.symmetrize();
    m
}

fn bench_eigen(c: &mut Criterion) {
    // The legacy Jacobi kernel, pinned explicitly so the group keeps
    // measuring Jacobi now that `SymEigen::new` defaults to QL.
    let mut group = c.benchmark_group("jacobi_eigen");
    for d in [10usize, 40, 100] {
        let m = random_sym(d);
        group.bench_with_input(BenchmarkId::new("decompose", d), &d, |b, _| {
            b.iter(|| {
                std::hint::black_box(SymEigen::with_options(
                    std::hint::black_box(&m),
                    JacobiOptions::default(),
                ))
            })
        });
    }
    group.finish();

    // The two-tier default: Householder + implicit-shift QL.
    let mut group = c.benchmark_group("ql_eigen");
    for d in [10usize, 40, 100] {
        let m = random_sym(d);
        group.bench_with_input(BenchmarkId::new("decompose", d), &d, |b, _| {
            b.iter(|| std::hint::black_box(SymEigen::new(std::hint::black_box(&m))))
        });
    }
    group.finish();

    // Matrix-free extremes (warm-started across iterations, like the
    // ADCD-X probe chain).
    let mut group = c.benchmark_group("lanczos_extremes");
    for d in [10usize, 40, 100] {
        let m = random_sym(d);
        let shift = 0.0;
        let scale = d as f64;
        let mut ws = LanczosWorkspace::new();
        let mut stats = LanczosStats::default();
        group.bench_with_input(BenchmarkId::new("extremes", d), &d, |b, _| {
            b.iter(|| {
                let mut op = MatrixOperator::new(std::hint::black_box(&m));
                std::hint::black_box(ws.extremes(
                    &mut op,
                    shift,
                    scale,
                    RitzSide::Smallest,
                    &LanczosOptions::default(),
                    &mut stats,
                ))
            })
        });
    }
    group.finish();
}

fn bench_optimizer(c: &mut Criterion) {
    c.bench_function("opt/rosenbrock_box_2d", |b| {
        let bounds = Bounds::new(vec![-2.0, -2.0], vec![2.0, 2.0]);
        let opts = OptimizeOptions::default();
        b.iter(|| {
            std::hint::black_box(minimize_box(
                |x| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2),
                &bounds,
                &opts,
            ))
        })
    });
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    for d in [10usize, 100] {
        let msg = NodeMessage::Violation {
            node: 3,
            kind: ViolationKind::SafeZone,
            local_vector: vec![1.25; d],
            epoch: 1,
        };
        group.bench_with_input(BenchmarkId::new("encode_violation", d), &d, |b, _| {
            b.iter(|| std::hint::black_box(wire::encode_node_message(std::hint::black_box(&msg))))
        });
        let bytes = wire::encode_node_message(&msg);
        group.bench_with_input(BenchmarkId::new("decode_violation", d), &d, |b, _| {
            b.iter(|| std::hint::black_box(wire::decode_node_message(std::hint::black_box(&bytes))))
        });
        // The largest frame the protocol sends: a full constraint
        // update with its curvature matrix (d × d payload).
        let constraints = CoordinatorMessage::NewConstraints {
            zone: SafeZone {
                x0: vec![0.1; d],
                f0: 1.0,
                grad0: vec![0.2; d],
                l: 0.9,
                u: 1.1,
                dc: DcKind::ConvexDiff,
                curvature: Curvature::Quadratic(Matrix::identity(d)),
                neighborhood: None,
            },
            slack: vec![0.0; d],
            epoch: 1,
        };
        group.bench_with_input(BenchmarkId::new("encode_constraints", d), &d, |b, _| {
            b.iter(|| {
                std::hint::black_box(wire::encode_coordinator_message(std::hint::black_box(
                    &constraints,
                )))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_autodiff, bench_eigen, bench_optimizer, bench_wire);
criterion_main!(benches);
