//! Transport throughput: reports/sec and syscalls/report for the epoll
//! reactor vs the thread-per-connection blocking transport, at 1k and
//! 10k concurrent node connections.
//!
//! Not a criterion bench: each configuration is one timed blast of
//! real frames over real sockets, printing `NETLINE <key> value <float>`
//! rows that `scripts/bench_snapshot.sh` snapshots into
//! BENCH_net_throughput.json. The headline claims (DESIGN.md §3.15):
//!
//! * at 1k connections the reactor sustains ~3× the threaded backend's
//!   reports/sec in wall clock and ~40× fewer syscalls per report
//!   (coalesced reads amortize the wakeup + 2-read cost the threaded
//!   backend pays per frame). Wall clock understates the gap here:
//!   the load generator shares this container's single core with the
//!   server, so identical client cost is added to both denominators;
//! * at 10k connections the reactor still runs in one event-loop thread
//!   (the threaded backend would need 10k reader threads and is skipped).
//!
//! Topology: the parent process hosts the coordinator transport; client
//! connections live in re-exec'd child processes (`AUTOMON_NET_CHILD`)
//! so the parent's fd budget holds 10k server-side sockets and, for the
//! threaded backend, client-side writes don't pollute the process-wide
//! syscall counters the reader threads share. Children connect, wait
//! for a go-frame on each connection, then blast; the parent times from
//! go to last-frame-received.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use automon_core::{CommCause, CoordinatorMessage, NodeMessage, Outbound, ViolationKind};
use automon_net::reactor::ReactorCoordinatorTransport;
use automon_net::tcp::{self, TcpCoordinatorTransport};
use automon_net::{wire, SyscallStats};

const CHILD_ENV: &str = "AUTOMON_NET_CHILD";
/// Client connections per child process (fd budget per child).
const CONNS_PER_CHILD: usize = 125;
const BLAST_DEADLINE: Duration = Duration::from_secs(300);

fn report(node: usize) -> NodeMessage {
    NodeMessage::Violation {
        node,
        kind: ViolationKind::SafeZone,
        local_vector: vec![0.25, -1.5],
        epoch: 1,
    }
}

/// Dial until the server's listener is up.
fn dial_retry(addr: SocketAddr) -> TcpStream {
    for _ in 0..2000 {
        if let Ok(s) = TcpStream::connect(addr) {
            return s;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("child: server never came up at {addr}");
}

/// Child mode: connect a contiguous range of node ids over raw sockets,
/// wait for the go-frame on each, then blast each connection's entire
/// report volley with one buffered write per connection. The load
/// generator batches deliberately — the bench measures the *server*
/// transport's capacity, so offered load must be cheap to produce on
/// this shared core; both backends face the identical client.
fn run_child(spec: &str) -> ! {
    let parts: Vec<&str> = spec.split_whitespace().collect();
    let addr: SocketAddr = parts[0].parse().expect("child addr");
    let start: usize = parts[1].parse().expect("child start");
    let count: usize = parts[2].parse().expect("child count");
    let reports: usize = parts[3].parse().expect("child reports");

    let frame_of = |id: usize| {
        let payload = wire::encode_node_message(&report(id));
        let mut framed = Vec::with_capacity(4 + payload.len());
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&payload);
        framed
    };
    let mut conns: Vec<TcpStream> = (start..start + count)
        .map(|id| {
            let mut s = dial_retry(addr);
            s.set_nodelay(true).expect("nodelay");
            let hello = wire::encode_node_message(&NodeMessage::LocalVector {
                node: id,
                vector: Vec::new(),
                epoch: 0,
            });
            s.write_all(&(hello.len() as u32).to_le_bytes()).expect("hello");
            s.write_all(&hello).expect("hello");
            s
        })
        .collect();
    for s in conns.iter_mut() {
        let mut prefix = [0u8; 4];
        s.read_exact(&mut prefix).expect("go prefix");
        let mut body = vec![0u8; u32::from_le_bytes(prefix) as usize];
        s.read_exact(&mut body).expect("go body");
    }
    // Interleave arrivals: each sweep writes a small batch per
    // connection, so the server sees frames from all connections
    // arriving together — the steady-state shape a monitor's report
    // traffic has, not one giant pre-buffered volley per socket.
    let per_write: usize = std::env::var("AUTOMON_NET_PER_WRITE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1);
    let volleys: Vec<Vec<u8>> = (0..count)
        .map(|i| frame_of(start + i).repeat(per_write))
        .collect();
    let mut sent = 0usize;
    while sent < reports {
        let batch = per_write.min(reports - sent);
        for (i, s) in conns.iter_mut().enumerate() {
            let volley = &volleys[i][..batch * (volleys[i].len() / per_write)];
            s.write_all(volley).expect("blast write");
        }
        sent += batch;
    }
    // Keep the sockets open until the parent has drained everything.
    std::thread::sleep(Duration::from_secs(3600));
    unreachable!()
}

enum Server {
    Threaded(TcpCoordinatorTransport),
    Reactor(ReactorCoordinatorTransport),
}

impl Server {
    fn recv_timeout(&self, d: Duration) -> Option<NodeMessage> {
        match self {
            Server::Threaded(t) => t.recv_timeout(d),
            Server::Reactor(t) => t.recv_timeout(d),
        }
    }

    fn send(&self, out: &Outbound) {
        match self {
            Server::Threaded(t) => t.send(out).expect("go send"),
            Server::Reactor(t) => t.send(out).expect("go send"),
        }
    }

    fn syscalls(&self) -> SyscallStats {
        match self {
            Server::Threaded(_) => tcp::threaded_syscalls(),
            Server::Reactor(t) => t.syscall_stats(),
        }
    }
}

struct BlastResult {
    reports_per_sec: f64,
    syscalls_per_report: f64,
    elapsed: Duration,
}

fn blast(backend: &str, conns: usize, reports_per_conn: usize) -> BlastResult {
    let probe = TcpListener::bind("127.0.0.1:0").expect("probe bind");
    let addr = probe.local_addr().expect("probe addr");
    drop(probe);

    // Children first: their connect path retries until the server binds.
    let exe = std::env::current_exe().expect("current exe");
    let mut children = Vec::new();
    let mut start = 0usize;
    while start < conns {
        let count = CONNS_PER_CHILD.min(conns - start);
        let child = Command::new(&exe)
            .env(
                CHILD_ENV,
                format!("{addr} {start} {count} {reports_per_conn}"),
            )
            .stdout(Stdio::null())
            .spawn()
            .expect("spawn child");
        children.push(child);
        start += count;
    }

    let tp = match backend {
        "threaded" => Server::Threaded(
            TcpCoordinatorTransport::bind(addr, conns)
                .map(|(t, _)| t)
                .expect("threaded bind"),
        ),
        _ => Server::Reactor(
            ReactorCoordinatorTransport::bind(addr, conns)
                .map(|(t, _)| t)
                .expect("reactor bind"),
        ),
    };

    // Hello syscalls are setup cost, not blast cost.
    let base = tp.syscalls();
    let total = conns * reports_per_conn;
    let started = Instant::now();
    for id in 0..conns {
        tp.send(&Outbound::new(
            id,
            CoordinatorMessage::RequestLocalVector { epoch: 1 },
            CommCause::FullSync,
        ));
    }
    let deadline = started + BLAST_DEADLINE;
    let mut got = 0usize;
    while got < total {
        if tp.recv_timeout(Duration::from_millis(500)).is_some() {
            got += 1;
            // Drain whatever else is already queued without re-arming
            // the timeout machinery per frame.
            while got < total && tp.recv_timeout(Duration::ZERO).is_some() {
                got += 1;
            }
        } else {
            assert!(
                Instant::now() < deadline,
                "{backend}/{conns}: blast stalled at {got}/{total} frames"
            );
        }
    }
    let elapsed = started.elapsed();
    let end = tp.syscalls();
    drop(tp);
    for mut c in children {
        let _ = c.kill();
        let _ = c.wait();
    }
    let syscalls = end.total().saturating_sub(base.total());
    BlastResult {
        reports_per_sec: total as f64 / elapsed.as_secs_f64(),
        syscalls_per_report: syscalls as f64 / total as f64,
        elapsed,
    }
}

/// Best of `reps` blasts: one-shot wall-clock measurements on a busy
/// box are noisy in one direction only (descheduling), so max is the
/// honest aggregate.
fn blast_best(backend: &str, conns: usize, reports_per_conn: usize, reps: usize) -> BlastResult {
    let mut best: Option<BlastResult> = None;
    for _ in 0..reps {
        let r = blast(backend, conns, reports_per_conn);
        if best.as_ref().is_none_or(|b| r.reports_per_sec > b.reports_per_sec) {
            best = Some(r);
        }
    }
    best.expect("reps >= 1")
}

fn emit(key: &str, value: f64) {
    println!("NETLINE {key} value {value}");
}

fn main() {
    if let Ok(spec) = std::env::var(CHILD_ENV) {
        run_child(&spec);
    }
    // `cargo bench -- --bench` style flags arrive here; this harness has
    // no options, so they're ignored.

    let full = std::env::var("AUTOMON_FULL").is_ok();
    let conns_1k = 1000usize;
    let conns_10k = 10_000usize;
    // Equalize total frames per configuration so elapsed times compare.
    let reports_1k = if full { 200 } else { 100 };
    let reports_10k = if full { 20 } else { 10 };

    eprintln!("net_throughput: threaded @ {conns_1k} conns ...");
    let threaded = blast_best("threaded", conns_1k, reports_1k, 2);
    eprintln!(
        "  threaded: {:.0} reports/s, {:.2} syscalls/report, {:?}",
        threaded.reports_per_sec, threaded.syscalls_per_report, threaded.elapsed
    );

    eprintln!("net_throughput: reactor @ {conns_1k} conns ...");
    let reactor = blast_best("reactor", conns_1k, reports_1k, 2);
    eprintln!(
        "  reactor:  {:.0} reports/s, {:.2} syscalls/report, {:?}",
        reactor.reports_per_sec, reactor.syscalls_per_report, reactor.elapsed
    );

    eprintln!("net_throughput: reactor @ {conns_10k} conns ...");
    let reactor_10k = blast_best("reactor", conns_10k, reports_10k, 2);
    eprintln!(
        "  reactor:  {:.0} reports/s, {:.2} syscalls/report, {:?}",
        reactor_10k.reports_per_sec, reactor_10k.syscalls_per_report, reactor_10k.elapsed
    );

    emit(
        "net_throughput/threaded/conns1000/reports_per_sec",
        threaded.reports_per_sec,
    );
    emit(
        "net_throughput/threaded/conns1000/syscalls_per_report",
        threaded.syscalls_per_report,
    );
    emit(
        "net_throughput/reactor/conns1000/reports_per_sec",
        reactor.reports_per_sec,
    );
    emit(
        "net_throughput/reactor/conns1000/syscalls_per_report",
        reactor.syscalls_per_report,
    );
    emit(
        "net_throughput/reactor/conns10000/reports_per_sec",
        reactor_10k.reports_per_sec,
    );
    emit(
        "net_throughput/reactor/conns10000/syscalls_per_report",
        reactor_10k.syscalls_per_report,
    );
    emit(
        "net_throughput/reactor_over_threaded/conns1000/speedup",
        reactor.reports_per_sec / threaded.reports_per_sec,
    );
    emit(
        "net_throughput/reactor_over_threaded/conns1000/syscall_ratio",
        threaded.syscalls_per_report / reactor.syscalls_per_report,
    );
    // The threaded backend at 10k connections would need 10k reader
    // threads; it is not measured. 1.0 marks the deliberate skip.
    emit("net_throughput/threaded/conns10000/skipped", 1.0);
    let _ = std::io::stdout().flush();
}
