//! Fleet scaling: root-tier message volume vs the flat single-
//! coordinator baseline (DESIGN.md §3.14).
//!
//! The hierarchy's claim is that leaf-local violations resolve
//! intra-shard, so the *root tier* — the only place a centralized
//! bottleneck could form — carries sublinearly many messages as the
//! stream count grows. This harness runs the same workload through the
//! flat runner and the fleet runner and reports messages/update and
//! bytes/update per tier, for inner product and for variance (the F2
//! second-moment style function: the pair that "Optimal Communication
//! for Classic Functions in the Coordinator Model" grounds the
//! coordinator-model lower bounds with).
//!
//! Not a timing bench: each configuration runs ONCE (the protocol is
//! deterministic, so one run IS the measurement) and prints
//! `FLEETLINE <key> value <float>` lines that
//! `scripts/bench_snapshot.sh` snapshots into BENCH_fleet_scaling.json.
//! Scale: 1k and 10k streams at 32 shards by default; `AUTOMON_FULL=1`
//! adds a 100k-stream point.

use std::sync::Arc;

use automon_autodiff::AutoDiffFn;
use automon_core::{MonitorConfig, MonitoredFunction};
use automon_data::synthetic::{InnerProductDataset, QuadraticDataset};
use automon_data::windowed_mean_series;
use automon_fleet::FleetConfig;
use automon_functions::{InnerProduct, Variance};
use automon_sim::{FleetSimulation, Simulation, Workload};

const MEAN_WINDOW: usize = 20;
const SHARDS: usize = 32;
const ROUNDS: usize = 50;
const DIM: usize = 4;
const EPSILON: f64 = 0.5;
const SEED: u64 = 17;

fn inner_product_case(streams: usize) -> (Arc<dyn MonitoredFunction>, Workload) {
    let raw = InnerProductDataset::generate(streams, ROUNDS + MEAN_WINDOW - 1, DIM, SEED);
    (
        Arc::new(AutoDiffFn::new(InnerProduct::new(DIM))),
        Workload::from_dense(&windowed_mean_series(&raw, MEAN_WINDOW)),
    )
}

/// Variance via §6 rewriting: augmented vectors `[x, x²]` from scalar
/// samples; `f(u, v) = v - u²` is the second-moment (F2-style) read.
fn variance_case(streams: usize) -> (Arc<dyn MonitoredFunction>, Workload) {
    let scalars = QuadraticDataset::generate(streams, ROUNDS + MEAN_WINDOW - 1, 1, SEED);
    let raw: Vec<Vec<Vec<f64>>> = scalars
        .into_iter()
        .map(|s| s.into_iter().map(|v| vec![v[0], v[0] * v[0]]).collect())
        .collect();
    (
        Arc::new(AutoDiffFn::new(Variance)),
        Workload::from_dense(&windowed_mean_series(&raw, MEAN_WINDOW)),
    )
}

fn emit(key: &str, value: f64) {
    println!("FLEETLINE {key} value {value}");
}

fn run_case(fn_name: &str, streams: usize, f: Arc<dyn MonitoredFunction>, w: &Workload) {
    let cfg = MonitorConfig::builder(EPSILON).build();
    let flat = Simulation::new(f.clone(), cfg.clone()).run(w);
    let report = FleetSimulation::new(f, cfg, FleetConfig::new(SHARDS)).run(w);
    assert!(report.updates > 0, "workload produced no updates");
    let per_update = |x: usize| x as f64 / report.updates as f64;

    let flat_mpu = per_update(flat.messages);
    let root_mpu = per_update(report.root_messages);
    let key = format!("fleet_scaling/{fn_name}/streams{streams}_shards{SHARDS}");
    emit(&format!("{key}/flat_msgs_per_update"), flat_mpu);
    emit(&format!("{key}/root_msgs_per_update"), root_mpu);
    emit(&format!("{key}/root_over_flat_msgs"), root_mpu / flat_mpu);
    emit(&format!("{key}/leaf_msgs_per_update"), per_update(report.leaf_messages));
    emit(&format!("{key}/flat_bytes_per_update"), per_update(flat.payload_bytes));
    emit(&format!("{key}/root_bytes_per_update"), per_update(report.root_payload_bytes));
    emit(&format!("{key}/leaf_bytes_per_update"), per_update(report.leaf_payload_bytes));
    emit(&format!("{key}/leaf_reports"), report.leaf_reports as f64);
    emit(&format!("{key}/flat_max_error"), flat.max_error);
    emit(&format!("{key}/fleet_max_error"), report.stats.max_error);
    eprintln!(
        "{fn_name} @ {streams} streams / {SHARDS} shards: \
         flat {flat_mpu:.4} msgs/update, root tier {root_mpu:.4} msgs/update \
         ({:.1}% of flat), fleet max error {:.4} (ε = {EPSILON})",
        100.0 * root_mpu / flat_mpu,
        report.stats.max_error
    );
    assert!(
        root_mpu <= 0.5 * flat_mpu,
        "{fn_name} @ {streams}: root tier ({root_mpu:.4}/update) must stay \
         ≤ 0.5× the flat baseline ({flat_mpu:.4}/update)"
    );
}

fn main() {
    let full = std::env::var("AUTOMON_FULL").map(|v| v == "1").unwrap_or(false);
    let mut scales = vec![1_000usize, 10_000];
    if full {
        scales.push(100_000);
    }
    for &streams in &scales {
        let (f, w) = inner_product_case(streams);
        run_case("inner-product", streams, f, &w);
        let (f, w) = variance_case(streams);
        run_case("variance", streams, f, &w);
    }
}
