//! End-to-end protocol throughput: simulation rounds per second for a
//! full coordinator + nodes + fabric loop — the number that bounds the
//! data rate a deployment can sustain (paper §3.7 assumption 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use automon_core::MonitorConfig;
use automon_sim::{Simulation, Workload};

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_rounds");
    group.sample_size(10);

    // Quiet data: measures the per-round floor (constraint checks only).
    {
        let bench = automon_bench::funcs::inner_product(10, 5, 200, 1);
        let quiet: Vec<Vec<Vec<f64>>> = (0..5).map(|_| vec![vec![0.1; 10]; 200]).collect();
        let w = Workload::from_dense(&quiet);
        let f = bench.f.clone();
        group.bench_function("quiet_200_rounds_5_nodes", |b| {
            b.iter(|| {
                let sim = Simulation::new(f.clone(), MonitorConfig::builder(0.2).build());
                std::hint::black_box(sim.run(std::hint::black_box(&w)))
            })
        });
    }

    // Drifting data: includes violation resolution and lazy syncs.
    for n in [5usize, 20] {
        let bench = automon_bench::funcs::inner_product(10, n, 200, 2);
        let f = bench.f.clone();
        let w = bench.workload;
        group.bench_with_input(BenchmarkId::new("drift_200_rounds", n), &n, |b, _| {
            b.iter(|| {
                let sim = Simulation::new(f.clone(), MonitorConfig::builder(0.2).build());
                std::hint::black_box(sim.run(std::hint::black_box(&w)))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rounds);
criterion_main!(benches);
