//! Durable-store hot path (docs/DURABILITY.md): `wal_append` is the
//! per-transition journaling cost the coordinator pays on every handle
//! (frame encode + CRC + in-memory disk append + sync), and
//! `recovery_replay` is the crash-side cost — rescanning the segments,
//! CRC-checking every frame, and folding the valid suffix onto the
//! newest checkpoint. Both run on `MemDisk` so the numbers measure the
//! store, not the filesystem.

use automon_core::{CoordinatorSnapshot, CoordinatorStats};
use automon_store::record::JournalRecord;
use automon_store::{CoordinatorStore, DynDisk, MemDisk, StoreOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const DIM: usize = 8;

fn base_snap(n: usize) -> CoordinatorSnapshot {
    CoordinatorSnapshot {
        n,
        r: 1.0,
        zone: None,
        slack: vec![vec![0.0; DIM]; n],
        known_x: vec![None; n],
        lru: (0..n).collect(),
        stats: CoordinatorStats::default(),
        consecutive_neighborhood: 0,
        epoch: 0,
        alive: vec![true; n],
        node_has_curvature: vec![false; n],
    }
}

/// A representative node transition: a dim-8 vector plus slack, the
/// record the coordinator journals most often.
fn node_rec(node: usize, v: f64) -> JournalRecord {
    JournalRecord::Node {
        node,
        x: Some((0..DIM).map(|i| v + i as f64 * 0.125).collect()),
        slack: vec![0.25; DIM],
        alive: true,
        has_curvature: true,
    }
}

fn mem_store() -> CoordinatorStore<DynDisk> {
    CoordinatorStore::open(Box::new(MemDisk::new()) as DynDisk, StoreOptions::default())
        .expect("fresh store")
        .0
}

/// A store pre-loaded with a checkpoint plus `records` journaled node
/// transitions, as a crashing coordinator would leave behind.
fn loaded_store(n: usize, records: usize) -> CoordinatorStore<DynDisk> {
    let mut store = mem_store();
    store.write_snapshot(&base_snap(n)).expect("checkpoint");
    for i in 0..records {
        store.append(&node_rec(i % n, i as f64 * 0.25)).expect("append");
    }
    store
}

fn bench_store_wal(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_wal");
    group.sample_size(10);

    // Steady-state journaling: one frame per iteration.
    group.bench_function("wal_append", |b| {
        let mut store = mem_store();
        store.write_snapshot(&base_snap(8)).expect("checkpoint");
        let mut i = 0usize;
        b.iter(|| {
            let rec = node_rec(i % 8, i as f64 * 0.25);
            i += 1;
            std::hint::black_box(store.append(std::hint::black_box(&rec)).expect("append"))
        })
    });

    // Crash-side: full rescan + CRC + fold for growing log suffixes.
    for records in [256usize, 2048] {
        group.bench_with_input(
            BenchmarkId::new("recovery_replay", records),
            &records,
            |b, &records| {
                let mut store = loaded_store(8, records);
                b.iter(|| {
                    store.crash();
                    let rec = store.recover().expect("recovery scan");
                    assert_eq!(rec.report.records_replayed, records);
                    std::hint::black_box(rec.snapshot)
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_store_wal);
criterion_main!(benches);
