//! Decomposition-cache hot path (DESIGN §3.11): a drifting-mean
//! workload whose reference point cycles through a small lattice of
//! exact `x0` values. `cache_off` pays the full ADCD-X eigen search on
//! every full sync; `cache_hit` replays pre-warmed entries (BTreeMap
//! probe + clone); `warm_start` seeds Lanczos with cached Ritz vectors
//! from an adjacent radius bucket. The acceptance bar for the cache is
//! `cache_hit` ≥ 3× faster than `cache_off` at identical results.

use automon_core::{
    adcd, CacheLookup, CachePolicy, DecompCache, DecompCacheConfig, EigenSearch, MonitorConfig,
    NeighborhoodBox, Parallelism,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const LATTICE: usize = 8;
const FN_ID: u64 = 1;

fn cfg() -> MonitorConfig {
    MonitorConfig::builder(0.1)
        .eigen_search(EigenSearch {
            probes: 4,
            nm_iters: 12,
            seed: 2,
            ..Default::default()
        })
        .parallelism(Parallelism::Sequential)
        .build()
}

/// The drifting mean: `LATTICE` exact reference points stepping along
/// the simplex diagonal, as a slowly wandering stream mean would
/// revisit quantization cells.
fn lattice(d: usize) -> Vec<(Vec<f64>, NeighborhoodBox)> {
    (0..LATTICE)
        .map(|j| {
            let x0: Vec<f64> = (0..d)
                .map(|i| 1.0 / d as f64 + 1e-3 * j as f64 + 1e-5 * i as f64)
                .collect();
            let b = NeighborhoodBox {
                lo: x0.iter().map(|v| (v - 0.05).max(1e-6)).collect(),
                hi: x0.iter().map(|v| (v + 0.05).min(1.0)).collect(),
            };
            (x0, b)
        })
        .collect()
}

fn warmed_cache(
    f: &dyn automon_core::MonitoredFunction,
    points: &[(Vec<f64>, NeighborhoodBox)],
    r: f64,
    cfg: &MonitorConfig,
    cache_cfg: DecompCacheConfig,
) -> DecompCache {
    let mut cache = DecompCache::new(cache_cfg);
    for (x0, b) in points {
        let (dec, ritz) = adcd::decompose_with_seeds(f, x0, Some(b), cfg, None);
        cache.insert(FN_ID, x0, r, b.clone(), dec, ritz);
    }
    cache
}

fn bench_decomp_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("decomp_cache");
    group.sample_size(10);
    let cfg = cfg();
    let r = 0.05;

    for d in [10usize, 20] {
        let bench = automon_bench::funcs::kld(d, 2, 30, 1);
        let f = bench.f.as_ref();
        let points = lattice(d);

        // Cold path: every full sync runs the eigen search.
        group.bench_with_input(BenchmarkId::new("cache_off", d), &d, |bch, _| {
            let mut j = 0usize;
            bch.iter(|| {
                let (x0, b) = &points[j % LATTICE];
                j += 1;
                std::hint::black_box(adcd::decompose(f, std::hint::black_box(x0), Some(b), &cfg))
            })
        });

        // Hot path: pre-warmed cache, every lookup is an exact hit.
        group.bench_with_input(BenchmarkId::new("cache_hit", d), &d, |bch, _| {
            let mut cache = warmed_cache(f, &points, r, &cfg, DecompCacheConfig::default());
            let mut j = 0usize;
            bch.iter(|| {
                let (x0, b) = &points[j % LATTICE];
                j += 1;
                match cache.lookup(FN_ID, std::hint::black_box(x0), r, b) {
                    CacheLookup::Exact(dec) => std::hint::black_box(dec),
                    other => panic!("expected exact hit, got {other:?}"),
                }
            })
        });

        // Near-hit path: same cell, adjacent radius bucket ⇒ Ritz
        // warm-start for the Lanczos extremes.
        group.bench_with_input(BenchmarkId::new("warm_start", d), &d, |bch, _| {
            let cache_cfg = DecompCacheConfig {
                warm_start: true,
                ..DecompCacheConfig::default()
            };
            let mut cache = warmed_cache(f, &points, r, &cfg, cache_cfg);
            // Querying at half the radius lands in the adjacent bucket:
            // never an exact hit, always a Ritz-seeded decomposition.
            let near_r = r / 2.0;
            let mut j = 0usize;
            bch.iter(|| {
                let (x0, b) = &points[j % LATTICE];
                j += 1;
                let seeds = match cache.lookup(FN_ID, x0, near_r, b) {
                    CacheLookup::Near(s) => s,
                    other => panic!("expected near hit, got {other:?}"),
                };
                std::hint::black_box(adcd::decompose_with_seeds(
                    f,
                    std::hint::black_box(x0),
                    Some(b),
                    &cfg,
                    Some(&seeds),
                ))
            })
        });

        // Eviction-policy overhead under a working set 2× capacity:
        // the policies differ only in bookkeeping, not correctness.
        for policy in [CachePolicy::LruK, CachePolicy::Slru, CachePolicy::Arc] {
            let name = format!("churn_{}", policy.name());
            group.bench_with_input(BenchmarkId::new(&name, d), &d, |bch, _| {
                let cache_cfg = DecompCacheConfig {
                    policy,
                    capacity: LATTICE / 2,
                    ..DecompCacheConfig::default()
                };
                let mut cache = warmed_cache(f, &points, r, &cfg, cache_cfg);
                let (dec0, ritz0) =
                    adcd::decompose_with_seeds(f, &points[0].0, Some(&points[0].1), &cfg, None);
                let mut j = 0usize;
                bch.iter(|| {
                    let (x0, b) = &points[j % LATTICE];
                    j += 1;
                    match cache.lookup(FN_ID, x0, r, b) {
                        CacheLookup::Exact(dec) => std::hint::black_box(dec),
                        _ => {
                            cache.insert(FN_ID, x0, r, b.clone(), dec0.clone(), ritz0.clone());
                            std::hint::black_box(dec0.clone())
                        }
                    }
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_decomp_cache);
criterion_main!(benches);
