//! §4.4 node runtime: the cost of a node checking one data update should
//! be close to a bare evaluation of `f` on the local vector, and roughly
//! dimension-independent at millisecond scale.

use std::sync::Arc;

use automon_core::{Coordinator, MonitorConfig, MonitoredFunction, Node};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn setup(f: Arc<dyn MonitoredFunction>, x: Vec<f64>) -> Node {
    // One-node system: register and full-sync so constraints exist.
    let mut coord = Coordinator::new(f.clone(), 1, MonitorConfig::builder(0.5).build());
    let mut node = Node::new(0, f);
    if let Some(m) = node.update_data(x) {
        for out in coord.handle(m) {
            let _ = node.handle(out.msg);
        }
    }
    node
}

fn bench_node_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("node_update_check");
    for d in [10usize, 40, 100] {
        let bench = automon_bench::funcs::inner_product(d, 1, 25, 1);
        let x = vec![0.05; d];
        let mut node = setup(bench.f.clone(), x.clone());
        group.bench_with_input(BenchmarkId::new("inner_product", d), &d, |b, _| {
            b.iter(|| {
                let msg = node.update_data(std::hint::black_box(x.clone()));
                std::hint::black_box(msg)
            })
        });
        let f = bench.f.clone();
        group.bench_with_input(BenchmarkId::new("bare_eval", d), &d, |b, _| {
            b.iter(|| std::hint::black_box(f.eval(std::hint::black_box(&x))))
        });
    }
    // A nonlinear ADCD-X function: KLD.
    for d in [10usize, 40] {
        let bench = automon_bench::funcs::kld(d, 1, 25, 1);
        let x = vec![1.0 / d as f64; d];
        let mut node = setup(bench.f.clone(), x.clone());
        group.bench_with_input(BenchmarkId::new("kld", d), &d, |b, _| {
            b.iter(|| {
                let msg = node.update_data(std::hint::black_box(x.clone()));
                std::hint::black_box(msg)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_node_update);
criterion_main!(benches);
