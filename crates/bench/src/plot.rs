//! Minimal SVG plotting for the experiment harness.
//!
//! The paper's figures are line/scatter charts; this module renders the
//! harness's series as standalone SVG files (no plotting dependencies —
//! the output is hand-assembled markup). Good enough to eyeball every
//! reproduced figure next to the paper.

use std::fmt::Write as _;
use std::path::Path;

/// A named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
    /// Draw straight segments between points.
    pub line: bool,
}

impl Series {
    /// A line series.
    pub fn line(label: &str, points: Vec<(f64, f64)>) -> Self {
        Self {
            label: label.to_string(),
            points,
            line: true,
        }
    }

    /// A scatter (markers-only) series.
    pub fn scatter(label: &str, points: Vec<(f64, f64)>) -> Self {
        Self {
            label: label.to_string(),
            points,
            line: false,
        }
    }
}

/// Axis scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AxisScale {
    /// Linear mapping.
    Linear,
    /// Log₁₀ mapping (non-positive values are dropped).
    Log,
}

/// A single-panel chart.
#[derive(Debug, Clone)]
pub struct Chart {
    /// Panel title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// X-axis scale.
    pub x_scale: AxisScale,
    /// Series to draw.
    pub series: Vec<Series>,
}

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 160.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 55.0;
const PALETTE: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#7f7f7f",
];

impl Chart {
    /// A new empty chart with linear axes.
    pub fn new(title: &str, x_label: &str, y_label: &str) -> Self {
        Self {
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            x_scale: AxisScale::Linear,
            series: Vec::new(),
        }
    }

    /// Use a log₁₀ x-axis (message counts span decades).
    pub fn log_x(mut self) -> Self {
        self.x_scale = AxisScale::Log;
        self
    }

    /// Add a series.
    pub fn push(&mut self, s: Series) {
        self.series.push(s);
    }

    fn tx(&self, x: f64) -> Option<f64> {
        match self.x_scale {
            AxisScale::Linear => Some(x),
            AxisScale::Log => (x > 0.0).then(|| x.log10()),
        }
    }

    /// Render to an SVG string.
    ///
    /// Empty charts (no finite points) render axes only.
    pub fn render(&self) -> String {
        // Collect transformed points per series.
        let transformed: Vec<Vec<(f64, f64)>> = self
            .series
            .iter()
            .map(|s| {
                s.points
                    .iter()
                    .filter_map(|&(x, y)| {
                        let tx = self.tx(x)?;
                        (tx.is_finite() && y.is_finite()).then_some((tx, y))
                    })
                    .collect()
            })
            .collect();
        let all: Vec<(f64, f64)> = transformed.iter().flatten().copied().collect();
        let (x0, x1) = span(all.iter().map(|p| p.0));
        let (y0, y1) = span(all.iter().map(|p| p.1));

        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
        let px = |x: f64| MARGIN_L + (x - x0) / (x1 - x0) * plot_w;
        let py = |y: f64| MARGIN_T + plot_h - (y - y0) / (y1 - y0) * plot_h;

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" font-family="sans-serif" font-size="12">"#
        );
        let _ = write!(
            svg,
            r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
        );
        // Frame.
        let _ = write!(
            svg,
            r##"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w}" height="{plot_h}" fill="none" stroke="#333"/>"##
        );
        // Title and axis labels.
        let _ = write!(
            svg,
            r#"<text x="{}" y="24" text-anchor="middle" font-size="15">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            xml(&self.title)
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            HEIGHT - 12.0,
            xml(&self.x_label)
        );
        let _ = write!(
            svg,
            r#"<text x="16" y="{}" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            xml(&self.y_label)
        );
        // Ticks: 5 per axis.
        for i in 0..=4 {
            let fx = x0 + (x1 - x0) * i as f64 / 4.0;
            let fy = y0 + (y1 - y0) * i as f64 / 4.0;
            let label_x = match self.x_scale {
                AxisScale::Linear => tick(fx),
                AxisScale::Log => tick(10f64.powf(fx)),
            };
            let _ = write!(
                svg,
                r#"<text x="{}" y="{}" text-anchor="middle" font-size="10">{label_x}</text>"#,
                px(fx),
                MARGIN_T + plot_h + 16.0
            );
            let _ = write!(
                svg,
                r#"<text x="{}" y="{}" text-anchor="end" font-size="10">{}</text>"#,
                MARGIN_L - 6.0,
                py(fy) + 4.0,
                tick(fy)
            );
            let _ = write!(
                svg,
                r##"<line x1="{}" y1="{MARGIN_T}" x2="{}" y2="{}" stroke="#eee"/>"##,
                px(fx),
                px(fx),
                MARGIN_T + plot_h
            );
        }
        // Series.
        for (k, (s, pts)) in self.series.iter().zip(&transformed).enumerate() {
            let color = PALETTE[k % PALETTE.len()];
            if s.line && pts.len() > 1 {
                let path: Vec<String> = pts
                    .iter()
                    .map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y)))
                    .collect();
                let _ = write!(
                    svg,
                    r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
                    path.join(" ")
                );
            }
            for &(x, y) in pts {
                let _ = write!(
                    svg,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"#,
                    px(x),
                    py(y)
                );
            }
            // Legend.
            let ly = MARGIN_T + 16.0 + 18.0 * k as f64;
            let lx = WIDTH - MARGIN_R + 12.0;
            let _ = write!(
                svg,
                r#"<circle cx="{lx}" cy="{}" r="4" fill="{color}"/><text x="{}" y="{}">{}</text>"#,
                ly - 4.0,
                lx + 10.0,
                ly,
                xml(&s.label)
            );
        }
        svg.push_str("</svg>");
        svg
    }

    /// Render and write `name.svg` into `dir`.
    pub fn write_svg(&self, dir: &Path, name: &str) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.svg"));
        std::fs::write(&path, self.render())?;
        Ok(path)
    }
}

/// Finite data span with a degenerate-range guard.
fn span(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !lo.is_finite() || !hi.is_finite() {
        return (0.0, 1.0);
    }
    if (hi - lo).abs() < 1e-12 {
        (lo - 0.5, hi + 0.5)
    } else {
        let pad = 0.04 * (hi - lo);
        (lo - pad, hi + pad)
    }
}

/// Compact tick label.
fn tick(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100_000.0 {
        format!("{:.0}K", v / 1000.0)
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Minimal XML escaping for labels.
fn xml(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_well_formed_svg() {
        let mut c = Chart::new("demo", "x", "y");
        c.push(Series::line("a", vec![(0.0, 0.0), (1.0, 2.0), (2.0, 1.0)]));
        c.push(Series::scatter("b", vec![(0.5, 1.5)]));
        let svg = c.render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("polyline"));
        assert_eq!(svg.matches("<circle").count(), 4 + 2); // 3+1 points + 2 legend dots
        assert!(svg.contains("demo"));
    }

    #[test]
    fn log_axis_drops_nonpositive_points() {
        let mut c = Chart::new("t", "msgs", "err").log_x();
        c.push(Series::line("s", vec![(0.0, 1.0), (10.0, 2.0), (100.0, 3.0)]));
        let svg = c.render();
        // Only the two positive-x points survive: 2 data circles + 1 legend.
        assert_eq!(svg.matches("<circle").count(), 3);
    }

    #[test]
    fn degenerate_ranges_do_not_panic() {
        let mut c = Chart::new("t", "x", "y");
        c.push(Series::scatter("s", vec![(1.0, 1.0)]));
        let svg = c.render();
        assert!(svg.contains("circle"));
        let empty = Chart::new("e", "x", "y").render();
        assert!(empty.contains("</svg>"));
    }

    #[test]
    fn labels_are_escaped() {
        let c = Chart::new("a < b & c", "x", "y");
        let svg = c.render();
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn writes_file() {
        let mut c = Chart::new("t", "x", "y");
        c.push(Series::line("s", vec![(0.0, 0.0), (1.0, 1.0)]));
        let dir = std::env::temp_dir().join("automon_plot_test");
        let path = c.write_svg(&dir, "demo").unwrap();
        assert!(std::fs::read_to_string(path).unwrap().contains("<svg"));
    }
}
