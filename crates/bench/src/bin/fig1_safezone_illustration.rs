//! Recomputes the Figure 1 safe-zone boundaries for sin(x) by bisection
//! on the actual constraint implementations.

fn main() {
    for table in automon_bench::experiments::fig1_safezone::run(automon_bench::Scale::from_env()) {
        automon_bench::emit(&table);
    }
}
