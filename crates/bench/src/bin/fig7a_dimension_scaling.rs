//! Figure 7(a): communication vs input dimension. `AUTOMON_FULL=1` for
//! the paper's d ∈ [10, 200] sweep.

fn main() {
    let scale = automon_bench::Scale::from_env();
    automon_bench::emit(&automon_bench::experiments::fig7_scalability::run_dimensions(scale));
    automon_bench::emit(&automon_bench::experiments::fig7_scalability::run_sync_runtime(scale));
}
