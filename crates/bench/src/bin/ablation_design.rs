//! Design-choice ablations (DC heuristic, ADCD-E vs X, exact vs
//! Gershgorin eigen bounds, hybrid Periodic fallback).

fn main() {
    let scale = automon_bench::Scale::from_env();
    for table in automon_bench::experiments::ablation_design::run(scale) {
        automon_bench::emit(&table);
    }
}
