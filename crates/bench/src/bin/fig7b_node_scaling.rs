//! Figure 7(b): communication vs node count. `AUTOMON_FULL=1` for the
//! paper's n up to 1000.

fn main() {
    let scale = automon_bench::Scale::from_env();
    automon_bench::emit(&automon_bench::experiments::fig7_scalability::run_nodes(scale));
}
