//! Regenerates the paper experiment implemented in
//! `automon_bench::experiments::fig4_traces`. Set `AUTOMON_FULL=1` for
//! paper-scale parameters.

fn main() {
    let scale = automon_bench::Scale::from_env();
    for table in automon_bench::experiments::fig4_traces::run(scale) {
        automon_bench::emit(&table);
    }
}
