//! Regenerates the paper experiment implemented in
//! `automon_bench::experiments::fig6_percentiles`. Set `AUTOMON_FULL=1` for
//! paper-scale parameters.

fn main() {
    let scale = automon_bench::Scale::from_env();
    for table in automon_bench::experiments::fig6_percentiles::run(scale) {
        automon_bench::emit(&table);
    }
}
