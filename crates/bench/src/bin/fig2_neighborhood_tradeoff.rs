//! Computes the Figure 2 neighborhood/safe-zone tradeoff on a real
//! function and renders the zones as SVG.

fn main() {
    for table in automon_bench::experiments::fig2_tradeoff::run(automon_bench::Scale::from_env()) {
        automon_bench::emit(&table);
    }
}
