//! Runs every table/figure experiment end to end and writes all outputs
//! under `bench_results/` (see DESIGN.md §5 for the per-figure index).
//! Set `AUTOMON_FULL=1` for paper-scale parameters.

use automon_bench::{emit, experiments, Scale};
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    println!("running all AutoMon experiments at {scale:?} scale\n");
    let t0 = Instant::now();
    type Runner = fn(Scale) -> Vec<automon_bench::Table>;
    let suites: Vec<(&str, Runner)> = vec![
        ("Figure 1 (safe-zone boundaries)", experiments::fig1_safezone::run),
        ("Figure 2 (neighborhood tradeoff)", experiments::fig2_tradeoff::run),
        ("Figure 3 (neighborhood size)", experiments::fig3_neighborhood::run),
        ("Figure 4 (function traces)", experiments::fig4_traces::run),
        ("Figure 5 (error vs messages)", experiments::fig5_tradeoff::run),
        ("Figure 6 (error percentiles)", experiments::fig6_percentiles::run),
        ("Figure 7 (scalability + §4.4 runtime)", experiments::fig7_scalability::run),
        ("Figure 8 (tuning effectiveness + §4.5)", experiments::fig8_tuning::run),
        ("Figure 9 (ablation)", experiments::fig9_ablation::run),
        ("Figure 10 (bandwidth + §4.7)", experiments::fig10_bandwidth::run),
        ("Design ablations (§3.4/§3.2/§6 extensions)", experiments::ablation_design::run),
    ];
    for (name, runner) in suites {
        println!("### {name}");
        let t = Instant::now();
        for table in runner(scale) {
            emit(&table);
        }
        println!("({name} took {:.1?})\n", t.elapsed());
    }
    println!("all experiments done in {:.1?}", t0.elapsed());
}
