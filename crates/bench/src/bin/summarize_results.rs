//! Digest `bench_results/*.csv` into the paper-vs-measured checklist —
//! the script behind EXPERIMENTS.md's "Measured" sections.
//!
//! Each check encodes one *shape* claim from the paper's evaluation and
//! prints PASS/FAIL with the supporting numbers.

use std::collections::BTreeMap;
use std::path::Path;

fn load(dir: &Path, name: &str) -> Option<(Vec<String>, Vec<Vec<String>>)> {
    let text = std::fs::read_to_string(dir.join(format!("{name}.csv"))).ok()?;
    let mut lines = text.lines();
    let header: Vec<String> = lines.next()?.split(',').map(str::to_string).collect();
    let rows = lines
        .map(|l| l.split(',').map(str::to_string).collect())
        .collect();
    Some((header, rows))
}

fn col(header: &[String], name: &str) -> usize {
    header
        .iter()
        .position(|h| h == name)
        .unwrap_or_else(|| panic!("missing column {name}"))
}

fn num(row: &[String], c: usize) -> f64 {
    row[c].parse().unwrap_or(f64::NAN)
}

struct Checker {
    passed: usize,
    failed: usize,
}

impl Checker {
    fn check(&mut self, claim: &str, ok: bool, detail: String) {
        if ok {
            self.passed += 1;
            println!("PASS  {claim}\n      {detail}");
        } else {
            self.failed += 1;
            println!("FAIL  {claim}\n      {detail}");
        }
    }
}

fn main() {
    let dir = automon_bench::results_dir();
    let mut c = Checker {
        passed: 0,
        failed: 0,
    };

    // Figure 1: boundaries within 2e-3 of the paper's values.
    if let Some((h, rows)) = load(&dir, "fig1_safezone_boundaries") {
        let (l, r, pl, pr) = (
            col(&h, "left"),
            col(&h, "right"),
            col(&h, "paper_left"),
            col(&h, "paper_right"),
        );
        let worst = rows
            .iter()
            .map(|row| {
                (num(row, l) - num(row, pl))
                    .abs()
                    .max((num(row, r) - num(row, pr)).abs())
            })
            .fold(0.0f64, f64::max);
        c.check(
            "Fig 1: safe-zone boundaries match the paper's digits",
            worst < 2e-3,
            format!("max |boundary - paper| = {worst:.5}"),
        );
    }

    // Figure 3: totals are U-shaped (optimum strictly interior) and r*
    // grows with ε.
    if let Some((h, rows)) = load(&dir, "fig3_optimal_r") {
        let rstar = col(&h, "r_star");
        let rs: Vec<f64> = rows.iter().map(|r| num(r, rstar)).collect();
        c.check(
            "Fig 3: optimal neighborhood size grows with ε",
            rs.windows(2).all(|w| w[0] <= w[1]),
            format!("r* by ε: {rs:?}"),
        );
    }

    // Figure 5: per function, AutoMon ≡ CB where present; every AutoMon
    // row's error ≤ its ε (for guarantee classes IP/Quadratic/KLD);
    // Periodic's error at matched messages is no better than AutoMon's.
    if let Some((h, rows)) = load(&dir, "fig5_error_vs_messages") {
        let (fc, ac, pc, mc, ec) = (
            col(&h, "function"),
            col(&h, "algorithm"),
            col(&h, "param"),
            col(&h, "messages"),
            col(&h, "max_error"),
        );
        // CB equivalence.
        let mut automon: BTreeMap<(String, String), (f64, f64)> = BTreeMap::new();
        let mut cb: BTreeMap<(String, String), (f64, f64)> = BTreeMap::new();
        for row in &rows {
            let key = (row[fc].clone(), row[pc].clone());
            let val = (num(row, mc), num(row, ec));
            match row[ac].as_str() {
                "AutoMon" => {
                    automon.insert(key, val);
                }
                "CB" => {
                    cb.insert(key, val);
                }
                _ => {}
            }
        }
        let cb_match = cb
            .iter()
            .all(|(k, v)| automon.get(k).is_some_and(|a| a == v));
        c.check(
            "Fig 5: CB and AutoMon coincide on the inner product (§4.3)",
            !cb.is_empty() && cb_match,
            format!("{} CB points compared", cb.len()),
        );
        // Guarantee classes.
        let mut worst_ratio = 0.0f64;
        for row in &rows {
            if row[ac] == "AutoMon"
                && ["InnerProduct", "Quadratic", "KLD"].contains(&row[fc].as_str())
            {
                let eps: f64 = num(row, pc);
                worst_ratio = worst_ratio.max(num(row, ec) / eps);
            }
        }
        c.check(
            "Fig 5: guarantee-class errors never exceed ε (§3.7)",
            worst_ratio <= 1.0 + 1e-9,
            format!("worst error/ε = {worst_ratio:.4}"),
        );
        // DNN: AutoMon under Periodic at matched error.
        let dnn_automon: Vec<(f64, f64)> = rows
            .iter()
            .filter(|r| r[fc] == "DNN" && r[ac] == "AutoMon")
            .map(|r| (num(r, mc), num(r, ec)))
            .collect();
        let dnn_periodic: Vec<(f64, f64)> = rows
            .iter()
            .filter(|r| r[fc] == "DNN" && r[ac] == "Periodic")
            .map(|r| (num(r, mc), num(r, ec)))
            .collect();
        // For every Periodic point with error ≥ some AutoMon point's
        // error, that AutoMon point must use fewer messages.
        let dominated = dnn_automon.iter().all(|&(am, ae)| {
            dnn_periodic
                .iter()
                .filter(|&&(_, pe)| pe <= ae)
                .all(|&(pm, _)| pm >= am)
        });
        c.check(
            "Fig 5: on DNN, AutoMon dominates Periodic at matched error (§4.3)",
            dominated,
            format!(
                "AutoMon points {dnn_automon:?} vs Periodic {dnn_periodic:?}"
            ),
        );
    }

    // Figure 6: KLD (guaranteed) max ≤ 100% of bound; DNN p99 ≤ 100%.
    if let Some((h, rows)) = load(&dir, "fig6_error_percentiles") {
        let (fc, maxc, p99c) = (
            col(&h, "function"),
            col(&h, "max_pct_of_bound"),
            col(&h, "p99_pct_of_bound"),
        );
        let kld_ok = rows
            .iter()
            .filter(|r| r[fc] == "KLD")
            .all(|r| num(r, maxc) <= 100.0 + 1e-6);
        c.check(
            "Fig 6: KLD max error stays within the bound",
            kld_ok,
            "per-ε max as % of bound all ≤ 100".into(),
        );
        let dnn_p99: Vec<f64> = rows
            .iter()
            .filter(|r| r[fc] == "DNN")
            .map(|r| num(r, p99c))
            .collect();
        c.check(
            "Fig 6: DNN p99 error within the bound (no guarantee, §4.3)",
            dnn_p99.iter().all(|&v| v <= 100.0 + 1e-6),
            format!("DNN p99 % of bound: {dnn_p99:?}"),
        );
    }

    // Figure 7a: all functions below centralization; KLD grows most.
    if let Some((h, rows)) = load(&dir, "fig7a_dimension_scaling") {
        let (fc, mc, cc) = (
            col(&h, "function"),
            col(&h, "messages"),
            col(&h, "centralization"),
        );
        let under = rows.iter().all(|r| num(r, mc) <= num(r, cc));
        c.check(
            "Fig 7a: AutoMon stays below centralization at every dimension",
            under,
            format!("{} rows checked", rows.len()),
        );
        let growth = |f: &str| -> f64 {
            let v: Vec<f64> = rows
                .iter()
                .filter(|r| r[fc] == f)
                .map(|r| num(r, mc))
                .collect();
            v.last().copied().unwrap_or(f64::NAN) / v.first().copied().unwrap_or(f64::NAN)
        };
        c.check(
            "Fig 7a: KLD grows with dimension at least as fast as Inner Product",
            growth("KLD") >= growth("InnerProduct"),
            format!(
                "growth factors: KLD {:.2}, MLP-d {:.2}, InnerProduct {:.2}",
                growth("KLD"),
                growth("MLP-d"),
                growth("InnerProduct")
            ),
        );
    }

    // Figure 9: no-ADCD misses violations; no-slack out-messages AutoMon.
    if let Some((h, rows)) = load(&dir, "fig9_ablation_summary") {
        let (fc, arm, mc, missed) = (
            col(&h, "function"),
            col(&h, "arm"),
            col(&h, "messages"),
            col(&h, "missed_violation_rounds"),
        );
        let missed_any = rows
            .iter()
            .any(|r| r[arm].contains("no-ADCD") && num(r, missed) > 0.0);
        c.check(
            "Fig 9: removing ADCD produces missed violations (§4.6)",
            missed_any,
            "at least one no-ADCD arm recorded missed-violation rounds".into(),
        );
        let saddle = |a: &str| -> f64 {
            rows.iter()
                .find(|r| r[fc].contains("x1") && r[arm] == a)
                .map(|r| num(r, mc))
                .unwrap_or(f64::NAN)
        };
        c.check(
            "Fig 9: no-ADCD-no-slack costs ≥ 10× AutoMon's messages",
            saddle("no-ADCD-no-slack") >= 10.0 * saddle("AutoMon"),
            format!(
                "saddle messages: AutoMon {}, no-ADCD-no-slack {}",
                saddle("AutoMon"),
                saddle("no-ADCD-no-slack")
            ),
        );
    }

    // §4.7: simulation-vs-deployment message difference within the
    // paper's reported 0–16.6% band (we allow ≤ 25% at quick scale).
    if let Some((h, rows)) = load(&dir, "sec4_7_simulation_vs_deployment") {
        let d = col(&h, "diff_pct");
        let worst = rows.iter().map(|r| num(r, d)).fold(0.0f64, f64::max);
        c.check(
            "§4.7: deployment-style jitter shifts message counts only mildly",
            worst <= 25.0,
            format!("worst diff = {worst:.2}%"),
        );
    }

    println!("\n{} checks passed, {} failed", c.passed, c.failed);
    if c.failed > 0 {
        std::process::exit(1);
    }
}
