//! Automatic chart generation for known experiment tables.
//!
//! [`charts_from_table`] recognizes the harness's table names and turns
//! them into [`Chart`]s shaped like the paper's figures; [`crate::emit`]
//! writes the SVGs next to the CSVs.

use std::collections::BTreeMap;

use crate::plot::{Chart, Series};
use crate::Table;

/// Column index by header name.
fn col(t: &Table, name: &str) -> Option<usize> {
    t.header.iter().position(|h| h == name)
}

/// Parse a cell as f64 (non-numeric cells become None).
fn num(t: &Table, row: &[String], name: &str) -> Option<f64> {
    row.get(col(t, name)?)?.parse().ok()
}

/// Group rows by a string column.
fn groups<'t>(t: &'t Table, by: &str) -> BTreeMap<&'t str, Vec<&'t Vec<String>>> {
    let mut out: BTreeMap<&str, Vec<&Vec<String>>> = BTreeMap::new();
    if let Some(c) = col(t, by) {
        for row in &t.rows {
            out.entry(row[c].as_str()).or_default().push(row);
        }
    }
    out
}

/// Series of `(x, y)` from a row group, sorted by x.
fn xy(t: &Table, rows: &[&Vec<String>], x: &str, y: &str) -> Vec<(f64, f64)> {
    let mut pts: Vec<(f64, f64)> = rows
        .iter()
        .filter_map(|r| Some((num(t, r, x)?, num(t, r, y)?)))
        .collect();
    pts.sort_by(|a, b| a.0.total_cmp(&b.0));
    pts
}

/// Build the paper-shaped charts for a known table (empty for tables
/// without a chart form).
pub fn charts_from_table(t: &Table) -> Vec<Chart> {
    match t.name.as_str() {
        "fig5_error_vs_messages" | "fig10_bandwidth" => {
            let (x_col, x_label) = if t.name.starts_with("fig5") {
                ("messages", "messages")
            } else {
                ("payload_bytes", "payload bytes")
            };
            groups(t, "function")
                .into_iter()
                .map(|(function, rows)| {
                    let mut chart = Chart::new(
                        &format!("{} — {function}", t.name),
                        x_label,
                        "max error",
                    )
                    .log_x();
                    let mut by_algo: BTreeMap<&str, Vec<&Vec<String>>> = BTreeMap::new();
                    let algo_col = col(t, "algorithm").expect("algorithm column");
                    for r in rows {
                        by_algo.entry(r[algo_col].as_str()).or_default().push(r);
                    }
                    for (algo, rows) in by_algo {
                        let pts = xy(t, &rows, x_col, "max_error");
                        if rows.len() == 1 {
                            chart.push(Series::scatter(algo, pts));
                        } else {
                            chart.push(Series::line(algo, pts));
                        }
                    }
                    chart
                })
                .collect()
        }
        "fig3_neighborhood_size" => groups(t, "epsilon")
            .into_iter()
            .map(|(eps, rows)| {
                let mut chart = Chart::new(
                    &format!("fig3 — ε = {eps}"),
                    "neighborhood size r",
                    "#violations",
                );
                chart.push(Series::line(
                    "neighborhood",
                    xy(t, &rows, "r", "neighborhood_violations"),
                ));
                chart.push(Series::line(
                    "safe zone",
                    xy(t, &rows, "r", "safezone_violations"),
                ));
                chart.push(Series::line("total", xy(t, &rows, "r", "total")));
                chart
            })
            .collect(),
        "fig7a_dimension_scaling" => {
            let mut chart = Chart::new("fig7a — messages vs dimension", "d", "messages");
            for (function, rows) in groups(t, "function") {
                chart.push(Series::line(function, xy(t, &rows, "d", "messages")));
            }
            vec![chart]
        }
        "fig7b_node_scaling" => {
            let mut chart =
                Chart::new("fig7b — messages vs nodes", "nodes", "messages").log_x();
            for (function, rows) in groups(t, "function") {
                chart.push(Series::line(function, xy(t, &rows, "nodes", "messages")));
            }
            vec![chart]
        }
        "fig6_error_percentiles" => {
            let mut chart = Chart::new(
                "fig6 — error relative to bound",
                "messages",
                "% of bound",
            )
            .log_x();
            for (function, rows) in groups(t, "function") {
                chart.push(Series::line(
                    &format!("{function} max"),
                    xy(t, &rows, "messages", "max_pct_of_bound"),
                ));
                chart.push(Series::line(
                    &format!("{function} p99"),
                    xy(t, &rows, "messages", "p99_pct_of_bound"),
                ));
            }
            vec![chart]
        }
        name if name.starts_with("fig4_trace_") || name.starts_with("fig9_trace_") => {
            let mut chart = Chart::new(name, "round", "value");
            if name.starts_with("fig4") {
                for series_name in ["truth", "lower", "upper"] {
                    let rows: Vec<&Vec<String>> = t.rows.iter().collect();
                    chart.push(Series::line(series_name, xy(t, &rows, "round", series_name)));
                }
            } else {
                let rows: Vec<&Vec<String>> = t.rows.iter().collect();
                chart.push(Series::line("abs_error", xy(t, &rows, "round", "abs_error")));
            }
            vec![chart]
        }
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig5_table() -> Table {
        let mut t = Table::new(
            "fig5_error_vs_messages",
            &["function", "algorithm", "param", "messages", "max_error"],
        );
        for (f, a, m, e) in [
            ("IP", "AutoMon", 100, 0.4),
            ("IP", "AutoMon", 500, 0.1),
            ("IP", "Periodic", 50, 0.9),
            ("IP", "Centralization", 1000, 0.0),
            ("Q", "AutoMon", 80, 0.2),
            ("Q", "AutoMon", 300, 0.05),
        ] {
            t.push(vec![
                f.into(),
                a.into(),
                "-".into(),
                m.to_string(),
                e.to_string(),
            ]);
        }
        t
    }

    #[test]
    fn fig5_builds_one_chart_per_function() {
        let charts = charts_from_table(&fig5_table());
        assert_eq!(charts.len(), 2);
        let ip = &charts[0];
        assert!(ip.title.contains("IP"));
        assert_eq!(ip.series.len(), 3);
        // Single-point series render as scatter.
        let central = ip.series.iter().find(|s| s.label == "Centralization").unwrap();
        assert!(!central.line);
        // Multi-point AutoMon series are sorted by x.
        let automon = ip.series.iter().find(|s| s.label == "AutoMon").unwrap();
        assert!(automon.points.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn unknown_tables_make_no_charts() {
        let t = Table::new("something_else", &["a"]);
        assert!(charts_from_table(&t).is_empty());
    }

    #[test]
    fn trace_tables_chart() {
        let mut t = Table::new(
            "fig4_trace_demo",
            &["round", "truth", "estimate", "lower", "upper"],
        );
        t.push(vec!["0".into(), "1.0".into(), "1.0".into(), "0.9".into(), "1.1".into()]);
        t.push(vec!["1".into(), "1.05".into(), "1.0".into(), "0.9".into(), "1.1".into()]);
        let charts = charts_from_table(&t);
        assert_eq!(charts.len(), 1);
        assert_eq!(charts[0].series.len(), 3);
    }
}
