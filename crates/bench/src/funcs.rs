//! Shared builders: the evaluation's functions paired with their datasets
//! (paper §4.2), at configurable scale.

use std::sync::Arc;

use automon_autodiff::AutoDiffFn;
use automon_core::MonitoredFunction;
use automon_data::air_quality::{self, AirQualityParams};
use automon_data::intrusion::{IntrusionDataset, IntrusionParams, FEATURES, NODES};
use automon_data::synthetic::{
    InnerProductDataset, MlpDataset, QuadraticDataset, RozenbrockDataset, SaddleDriftDataset,
};
use automon_data::{windowed_mean_series, SlidingWindow};
use automon_functions::{
    train_mlp_d, InnerProduct, IntrusionDnnSpec, KlDivergence, MlpFunction, QuadraticForm,
    Rozenbrock, SaddleQuadratic,
};
use automon_nn::{train, Loss, TrainOptions};
use automon_sim::Workload;

/// Mean sliding-window length for the synthetic datasets (paper §4.2).
pub const MEAN_WINDOW: usize = 20;

/// Histogram window length for KLD (paper §4.2).
pub const KLD_WINDOW: usize = 200;

/// A monitored function together with its workload.
pub struct Bench {
    /// Short label used in tables.
    pub name: String,
    /// The monitored function.
    pub f: Arc<dyn MonitoredFunction>,
    /// The update schedule.
    pub workload: Workload,
}

/// Inner Product on its phase-scheduled synthetic data (§4.2).
pub fn inner_product(d: usize, n: usize, rounds: usize, seed: u64) -> Bench {
    let raw = InnerProductDataset::generate(n, rounds + MEAN_WINDOW - 1, d, seed);
    let series = windowed_mean_series(&raw, MEAN_WINDOW);
    Bench {
        name: format!("InnerProduct(d={d})"),
        f: Arc::new(AutoDiffFn::new(InnerProduct::new(d))),
        workload: Workload::from_dense(&series),
    }
}

/// Quadratic Form with the alternating outlier node (§4.2).
pub fn quadratic(d: usize, n: usize, rounds: usize, seed: u64) -> Bench {
    let raw = QuadraticDataset::generate(n, rounds + MEAN_WINDOW - 1, d, seed);
    let series = windowed_mean_series(&raw, MEAN_WINDOW);
    Bench {
        name: format!("Quadratic(d={d})"),
        f: Arc::new(AutoDiffFn::new(QuadraticForm::random(d, seed ^ 0x9A))),
        workload: Workload::from_dense(&series),
    }
}

/// KLD over the simulated air-quality archive (§4.2; `d = 2 · bins`).
pub fn kld(d: usize, n: usize, rounds: usize, seed: u64) -> Bench {
    assert!(d.is_multiple_of(2), "kld: even dimension required");
    let bins = d / 2;
    let params = AirQualityParams {
        sites: n,
        hours: rounds + KLD_WINDOW - 1,
        seed,
    };
    let streams = air_quality::generate(&params);
    let series = air_quality::kld_series(&streams, KLD_WINDOW, bins);
    Bench {
        name: format!("KLD(d={d})"),
        f: Arc::new(AutoDiffFn::new(KlDivergence::with_paper_tau(
            d, n, KLD_WINDOW,
        ))),
        workload: Workload::from_dense(&series),
    }
}

/// MLP-d: the tanh network trained on `x₁·exp(-Σx²/(d-1))`, over the
/// drifting synthetic data with outliers (§4.2).
pub fn mlp_d(d: usize, n: usize, rounds: usize, seed: u64) -> Bench {
    let raw = MlpDataset::generate(n, rounds + MEAN_WINDOW - 1, d, seed);
    let series = windowed_mean_series(&raw, MEAN_WINDOW);
    Bench {
        name: format!("MLP-{d}"),
        f: Arc::new(AutoDiffFn::new(train_mlp_d(d, seed ^ 0x3D))),
        workload: Workload::from_dense(&series),
    }
}

/// The DNN intrusion-detection pipeline: simulated records, trained
/// detector, event-driven workload (§4.2). `records` controls the stream
/// length (the paper streams 311,029).
pub fn dnn_intrusion(records: usize, seed: u64) -> Bench {
    let params = IntrusionParams {
        records,
        attack_fraction: 0.2,
        seed,
    };
    let dataset = IntrusionDataset::generate(&params);
    let (xs, ys) = IntrusionDataset::training_set(&params, 1500.min(records));
    let mut net = IntrusionDnnSpec::scaled().build(seed ^ 0xD);
    train(
        &mut net,
        &xs,
        &ys,
        &TrainOptions {
            epochs: 5,
            lr: 1e-3,
            batch_size: 32,
            loss: Loss::Bce,
            seed,
            ..Default::default()
        },
    );
    let mut windows: Vec<SlidingWindow> = (0..NODES)
        .map(|_| SlidingWindow::new(MEAN_WINDOW, FEATURES))
        .collect();
    let mut events = Vec::new();
    for (node, rec) in &dataset.events {
        windows[*node].push(rec.features.clone());
        if windows[*node].is_full() {
            events.push((*node, windows[*node].mean().expect("full window")));
        }
    }
    Bench {
        name: "DNN".to_string(),
        f: Arc::new(AutoDiffFn::new(MlpFunction::new(net))),
        workload: Workload::from_events(NODES, &events),
    }
}

/// Rozenbrock on N(0, 0.2²) inputs (§3.6, §4.5).
pub fn rozenbrock(n: usize, rounds: usize, seed: u64) -> Bench {
    let raw = RozenbrockDataset::generate(n, rounds + MEAN_WINDOW - 1, seed);
    let series = windowed_mean_series(&raw, MEAN_WINDOW);
    Bench {
        name: "Rozenbrock".to_string(),
        f: Arc::new(AutoDiffFn::new(Rozenbrock)),
        workload: Workload::from_dense(&series),
    }
}

/// The §4.6 ablation function and its four-node drift script.
pub fn saddle(rounds: usize, seed: u64) -> Bench {
    let raw = SaddleDriftDataset::generate(rounds, seed);
    Bench {
        name: "-x1^2+x2^2".to_string(),
        f: Arc::new(AutoDiffFn::new(SaddleQuadratic)),
        workload: Workload::from_dense(&raw),
    }
}

/// Run AutoMon over a bench the way the paper runs every experiment:
/// with Algorithm 2 neighborhood tuning on a stream prefix (§4.1: "In
/// all the experiments, we use AutoMon with Algorithm 2 for
/// neighborhood-size tuning"). Constant-Hessian functions skip tuning —
/// ADCD-E has no neighborhood.
pub fn run_tuned(bench: &Bench, cfg: automon_core::MonitorConfig) -> automon_sim::RunStats {
    let sim = automon_sim::Simulation::new(bench.f.clone(), cfg);
    let r = if bench.f.has_constant_hessian() {
        None
    } else {
        let prefix_rounds = (bench.workload.rounds() / 20).clamp(50, 300);
        Some(sim.tune_r(&bench.workload.prefix(prefix_rounds)))
    };
    sim.run_with_r(&bench.workload, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_consistent_shapes() {
        let b = inner_product(4, 3, 50, 1);
        assert_eq!(b.workload.nodes(), 3);
        assert_eq!(b.workload.dim(), 4);
        assert_eq!(b.workload.rounds(), 50);
        assert_eq!(b.f.dim(), 4);

        let b = kld(8, 2, 30, 2);
        assert_eq!(b.workload.dim(), 8);
        assert_eq!(b.workload.rounds(), 30);

        let b = saddle(40, 3);
        assert_eq!(b.workload.nodes(), 4);
    }

    #[test]
    fn dnn_builder_produces_events() {
        let b = dnn_intrusion(400, 5);
        assert_eq!(b.workload.nodes(), NODES);
        assert!(b.workload.rounds() > 0);
        assert_eq!(b.f.dim(), FEATURES);
    }
}
