//! Figure 8 and the §4.5 text table: effectiveness of the
//! neighborhood-size tuning procedure (Algorithm 2).
//!
//! For Rozenbrock and MLP-2, over a sweep of ε and several seeded
//! repeats: messages when monitoring with the grid-searched optimal
//! `r*`, the tuned `r̂`, and fixed radii {0.05, 0.5, 2.5} — plus the
//! mean relative deviation of `r̂` from `r*`.

use automon_core::{tuning, MonitorConfig};
use automon_sim::Simulation;

use crate::funcs::{self, Bench};
use crate::{f, Scale, Table};

const FIXED_RADII: [f64; 3] = [0.05, 0.5, 2.5];

fn build(function: &str, rounds: usize, seed: u64) -> Bench {
    match function {
        "Rozenbrock" => funcs::rozenbrock(10, rounds, seed),
        "MLP-2" => funcs::mlp_d(2, 10, rounds, seed),
        other => panic!("unknown function {other}"),
    }
}

/// Grid search the true optimal `r*` by running full monitoring at each
/// candidate radius and keeping the message minimizer.
fn optimal_r(bench: &Bench, eps: f64, radii: &[f64]) -> (f64, usize) {
    let mut best = (radii[0], usize::MAX);
    for &r in radii {
        let cfg = MonitorConfig::builder(eps)
            .neighborhood(automon_core::NeighborhoodMode::Fixed(r))
            .build();
        let stats = Simulation::new(bench.f.clone(), cfg).run_with_r(&bench.workload, Some(r));
        if stats.messages < best.1 {
            best = (r, stats.messages);
        }
    }
    best
}

fn messages_with_r(bench: &Bench, eps: f64, r: f64) -> usize {
    let cfg = MonitorConfig::builder(eps)
        .neighborhood(automon_core::NeighborhoodMode::Fixed(r))
        .build();
    Simulation::new(bench.f.clone(), cfg)
        .run_with_r(&bench.workload, Some(r))
        .messages
}

/// Run the Figure 8 study.
pub fn run(scale: Scale) -> Vec<Table> {
    let (rounds, tuning_rounds, repeats) = match scale {
        Scale::Quick => (300, 100, 2),
        Scale::Full => (1000, 200, 5),
    };
    let mut table = Table::new(
        "fig8_tuning_effectiveness",
        &[
            "function",
            "epsilon",
            "seed",
            "r_star",
            "r_hat",
            "msgs_r_star",
            "msgs_r_hat",
            "msgs_r_0.05",
            "msgs_r_0.5",
            "msgs_r_2.5",
        ],
    );
    let mut rel = Table::new(
        "sec4_5_tuning_relative_error",
        &["function", "mean_rel_error_pct"],
    );

    let grid: Vec<f64> = (1..=10).map(|i| i as f64 * 0.05).collect();
    let eps_per_fn: [(&str, Vec<f64>); 2] = [
        ("Rozenbrock", vec![0.1, 0.5, 1.0]),
        ("MLP-2", vec![0.05, 0.15, 0.3]),
    ];

    for (function, epsilons) in &eps_per_fn {
        let mut rel_errs = Vec::new();
        for &eps in epsilons {
            for rep in 0..repeats {
                let seed = 0xF168 + rep as u64 * 101;
                let bench = build(function, rounds, seed);
                let (r_star, msgs_star) = optimal_r(&bench, eps, &grid);

                // Algorithm 2 on the tuning prefix.
                let prefix = bench.workload.prefix(tuning_rounds).to_node_series();
                let cfg = MonitorConfig::builder(eps).build();
                let r_hat = tuning::tune_neighborhood_size(&bench.f, &prefix, &cfg).r;

                let msgs_hat = messages_with_r(&bench, eps, r_hat);
                let fixed: Vec<usize> = FIXED_RADII
                    .iter()
                    .map(|&r| messages_with_r(&bench, eps, r))
                    .collect();

                rel_errs.push((r_hat - r_star).abs() / r_star.max(1e-9));
                table.push(vec![
                    function.to_string(),
                    f(eps),
                    rep.to_string(),
                    f(r_star),
                    f(r_hat),
                    msgs_star.to_string(),
                    msgs_hat.to_string(),
                    fixed[0].to_string(),
                    fixed[1].to_string(),
                    fixed[2].to_string(),
                ]);
            }
        }
        let mean_rel = 100.0 * rel_errs.iter().sum::<f64>() / rel_errs.len() as f64;
        rel.push(vec![function.to_string(), f(mean_rel)]);
    }
    vec![table, rel]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_r_picks_message_minimizer() {
        let bench = funcs::rozenbrock(3, 80, 7);
        let (r, msgs) = optimal_r(&bench, 0.5, &[0.05, 0.2, 0.8]);
        assert!(msgs < usize::MAX);
        assert!([0.05, 0.2, 0.8].contains(&r));
        // Any fixed radius must use at least as many messages.
        for cand in [0.05, 0.2, 0.8] {
            assert!(messages_with_r(&bench, 0.5, cand) >= msgs);
        }
    }
}
