//! Figure 6: AutoMon's error *relative to the requested bound* for KLD
//! (guaranteed — convex) and DNN (no guarantee), as max and 99th
//! percentile, against the number of messages.
//!
//! The paper's observation: despite the missing guarantee, the DNN error
//! profile matches KLD's — below the bound 99% of the time, and the rare
//! max-excess stays close to it.

use automon_core::{EigenSearch, MonitorConfig};

use crate::funcs;
use crate::{f, Scale, Table};

/// Run the Figure 6 sweeps.
pub fn run(scale: Scale) -> Vec<Table> {
    let (rounds, records) = match scale {
        Scale::Quick => (800, 2000),
        Scale::Full => (2000, 40_000),
    };
    let mut table = Table::new(
        "fig6_error_percentiles",
        &[
            "function",
            "epsilon",
            "messages",
            "max_pct_of_bound",
            "p99_pct_of_bound",
        ],
    );

    let kld = funcs::kld(20, 12, rounds, 0xF166);
    for eps in [0.02, 0.05, 0.1, 0.2] {
        let stats = funcs::run_tuned(&kld, MonitorConfig::builder(eps).build());
        table.push(vec![
            "KLD".into(),
            f(eps),
            stats.messages.to_string(),
            f(100.0 * stats.max_error / eps),
            f(100.0 * stats.p99_error / eps),
        ]);
    }

    let dnn = funcs::dnn_intrusion(records, 0xF166);
    for eps in [0.005, 0.01, 0.02, 0.05] {
        let cfg = MonitorConfig::builder(eps)
            .eigen_search(EigenSearch {
                probes: 4,
                nm_iters: 12,
                seed: 6,
            ..Default::default()
        })
            .build();
        let stats = funcs::run_tuned(&dnn, cfg);
        table.push(vec![
            "DNN".into(),
            f(eps),
            stats.messages.to_string(),
            f(100.0 * stats.max_error / eps),
            f(100.0 * stats.p99_error / eps),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;
    use automon_core::MonitorConfig;
    
    #[test]
    fn kld_percentages_stay_at_or_below_100() {
        let kld = funcs::kld(8, 3, 200, 9);
        let eps = 0.1;
        let stats = funcs::run_tuned(&kld, MonitorConfig::builder(eps).build());
        assert!(100.0 * stats.max_error / eps <= 100.0 + 1e-6);
        assert!(stats.p99_error <= stats.max_error);
    }
}
