//! Figure 9: the §4.6 ablation — what ADCD, slack, and lazy sync each
//! contribute.
//!
//! Arms: full AutoMon, "no ADCD" (raw admissible check as the local
//! constraint, slack + lazy sync kept), and "no ADCD, no slack" (basic GM
//! protocol). Workloads: `f = -x₁² + x₂²` with the four-node drift script
//! and MLP-2. Emits the running max-error/cumulative-message traces
//! (paper's per-round panels) and a summary table.

use automon_core::MonitorConfig;
use automon_sim::{RunStats, Simulation};

use crate::funcs::{self, Bench};
use crate::{f, Scale, Table};

fn arms(eps: f64) -> Vec<(&'static str, MonitorConfig)> {
    vec![
        ("AutoMon", MonitorConfig::builder(eps).build()),
        ("no-ADCD", MonitorConfig::builder(eps).without_adcd().build()),
        (
            "no-ADCD-no-slack",
            MonitorConfig::builder(eps)
                .without_adcd()
                .without_slack()
                .without_lazy_sync()
                .build(),
        ),
    ]
}

fn run_arm(bench: &Bench, cfg: MonitorConfig) -> RunStats {
    let stride = (bench.workload.rounds() / 100).max(1);
    Simulation::new(bench.f.clone(), cfg)
        .with_trace(stride)
        .run(&bench.workload)
}

/// Run the ablation.
pub fn run(scale: Scale) -> Vec<Table> {
    // The §4.6 script runs 1000 rounds; the missed-violation pathology
    // needs the full drift to develop, so quick mode keeps the length
    // and the paper's bounds (ε = 0.02 for the saddle, 0.15 for MLP-2,
    // tightened to 0.1 here because our MLP-2 surrogate is smoother).
    let rounds = match scale {
        Scale::Quick => 1000,
        Scale::Full => 1000,
    };
    let cases: Vec<(Bench, f64)> = vec![
        (funcs::saddle(rounds, 0xF169), 0.05),
        (funcs::mlp_d(2, 4, rounds, 0xF169), 0.1),
    ];

    let mut summary = Table::new(
        "fig9_ablation_summary",
        &[
            "function",
            "arm",
            "messages",
            "max_error",
            "missed_violation_rounds",
            "full_syncs",
            "lazy_syncs",
        ],
    );
    let mut traces = Vec::new();

    for (bench, eps) in &cases {
        for (arm, cfg) in arms(*eps) {
            let stats = run_arm(bench, cfg);
            summary.push(vec![
                bench.name.clone(),
                arm.into(),
                stats.messages.to_string(),
                f(stats.max_error),
                stats.missed_violation_rounds.to_string(),
                stats.full_syncs.to_string(),
                stats.lazy_syncs.to_string(),
            ]);
            let mut trace = Table::new(
                &format!(
                    "fig9_trace_{}_{}",
                    bench.name.replace(['-', '^', '+'], "_"),
                    arm.replace('-', "_")
                ),
                &["round", "abs_error", "cumulative_messages"],
            );
            let mut running_max = 0.0f64;
            for p in stats.trace.as_deref().unwrap_or(&[]) {
                running_max = running_max.max((p.estimate - p.truth).abs());
                trace.push(vec![
                    p.round.to_string(),
                    f(running_max),
                    p.cumulative_messages.to_string(),
                ]);
            }
            traces.push(trace);
        }
    }
    let mut out = vec![summary];
    out.extend(traces);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_summary_orders_arms_as_expected() {
        let tables = run(Scale::Quick);
        let summary = &tables[0];
        assert_eq!(summary.rows.len(), 6);
        // For the saddle function: the no-slack arm must use the most
        // messages (paper: it out-messages centralization).
        let get = |arm: &str| -> usize {
            summary
                .rows
                .iter()
                .find(|r| r[0] == "-x1^2+x2^2" && r[1] == arm)
                .unwrap()[2]
                .parse()
                .unwrap()
        };
        assert!(get("no-ADCD-no-slack") > get("AutoMon"));
    }
}
