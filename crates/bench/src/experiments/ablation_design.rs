//! Design-choice ablations beyond the paper's Figure 9, exercising the
//! claims the paper makes in passing:
//!
//! * **DC heuristic** (§3.4): choosing convex vs concave difference by
//!   the heuristic should beat always-convex / always-concave ("reduced
//!   safe zone violations by up to 30%" in the paper's preliminary
//!   experiments).
//! * **ADCD-E vs ADCD-X** (§3.2): for constant-Hessian functions,
//!   forcing ADCD-X must produce at least as many violations as ADCD-E
//!   (the paper proves the X safe zone is a subset of the E safe zone).
//! * **Exact vs Gershgorin eigen bounds** (§6 extension): Gershgorin is
//!   cheaper per full sync but more conservative, so it trades messages
//!   for coordinator time.
//! * **Hybrid Periodic fallback** (§6 extension): under thrashing
//!   (tiny ε on fast data) the fallback must cap communication.

use automon_core::{AdcdKind, DcKind, MonitorConfig};
use automon_sim::{run_hybrid, HybridConfig, Simulation};

use crate::funcs;
use crate::{f, Scale, Table};

/// DC heuristic vs forced representations, on the paper's own example:
/// sin(x) (§3.4), with the reference point sweeping across convex and
/// concave stretches so the per-sync choice matters.
fn dc_heuristic(scale: Scale) -> Table {
    let rounds = match scale {
        Scale::Quick => 600,
        Scale::Full => 1500,
    };
    let mut table = Table::new(
        "ablation_dc_heuristic",
        &["function", "policy", "messages", "safezone_violations", "max_error"],
    );
    // Nodes drift together through several periods of sin, with small
    // per-node jitter.
    let raw: Vec<Vec<Vec<f64>>> = (0..6)
        .map(|i| {
            let mut rng = automon_data::NormalSampler::new(0xAB01 + i as u64);
            (0..rounds)
                .map(|t| {
                    vec![t as f64 / rounds as f64 * 4.0 * std::f64::consts::PI
                        + rng.normal(0.0, 0.05)]
                })
                .collect()
        })
        .collect();
    let bench = funcs::Bench {
        name: "sin(x)".into(),
        f: std::sync::Arc::new(automon_autodiff::AutoDiffFn::new(
            automon_functions::Sine,
        )),
        workload: automon_sim::Workload::from_dense(&raw),
    };
    let eps = 0.25;
    let policies: [(&str, MonitorConfig); 3] = [
        ("heuristic", MonitorConfig::builder(eps).build()),
        (
            "always-convex",
            MonitorConfig::builder(eps).dc(DcKind::ConvexDiff).build(),
        ),
        (
            "always-concave",
            MonitorConfig::builder(eps).dc(DcKind::ConcaveDiff).build(),
        ),
    ];
    for (name, cfg) in policies {
        let stats = Simulation::new(bench.f.clone(), cfg).run(&bench.workload);
        table.push(vec![
            bench.name.clone(),
            name.into(),
            stats.messages.to_string(),
            stats.safezone_violations.to_string(),
            f(stats.max_error),
        ]);
    }
    table
}

/// ADCD-E vs forced ADCD-X on a constant-Hessian function.
fn e_vs_x(scale: Scale) -> Table {
    let rounds = match scale {
        Scale::Quick => 400,
        Scale::Full => 1000,
    };
    let mut table = Table::new(
        "ablation_adcd_e_vs_x",
        &["function", "variant", "messages", "safezone_violations", "max_error"],
    );
    let bench = funcs::inner_product(10, 6, rounds, 0xAB02);
    let eps = 0.2;
    for (name, cfg) in [
        ("ADCD-E (auto)", MonitorConfig::builder(eps).build()),
        (
            "ADCD-X (forced)",
            MonitorConfig::builder(eps).adcd(AdcdKind::X).build(),
        ),
    ] {
        let stats = Simulation::new(bench.f.clone(), cfg).run(&bench.workload);
        table.push(vec![
            bench.name.clone(),
            name.into(),
            stats.messages.to_string(),
            stats.safezone_violations.to_string(),
            f(stats.max_error),
        ]);
    }
    table
}

/// Exact vs Gershgorin per-probe eigen computation.
fn eigen_objective(scale: Scale) -> Table {
    let rounds = match scale {
        Scale::Quick => 300,
        Scale::Full => 800,
    };
    let mut table = Table::new(
        "ablation_eigen_objective",
        &["function", "objective", "messages", "full_sync_ms_total", "max_error"],
    );
    let bench = funcs::kld(10, 6, rounds, 0xAB03);
    let eps = 0.1;
    for (name, cfg) in [
        ("exact", MonitorConfig::builder(eps).build()),
        ("gershgorin", MonitorConfig::builder(eps).gershgorin_bounds().build()),
    ] {
        let t0 = std::time::Instant::now();
        let stats = Simulation::new(bench.f.clone(), cfg).run(&bench.workload);
        table.push(vec![
            bench.name.clone(),
            name.into(),
            stats.messages.to_string(),
            f(t0.elapsed().as_secs_f64() * 1e3),
            f(stats.max_error),
        ]);
    }
    table
}

/// Hybrid fallback under thrashing vs plain AutoMon.
fn hybrid_fallback(scale: Scale) -> Table {
    let rounds = match scale {
        Scale::Quick => 400,
        Scale::Full => 1000,
    };
    let mut table = Table::new(
        "ablation_hybrid_fallback",
        &["policy", "messages", "fallbacks", "periodic_rounds", "max_error"],
    );
    // Quadratic with the violent outlier node and a tight bound: plain
    // AutoMon thrashes; the hybrid caps communication.
    let bench = funcs::quadratic(10, 6, rounds, 0xAB04);
    let eps = 0.01;
    let plain = Simulation::new(bench.f.clone(), MonitorConfig::builder(eps).build())
        .run(&bench.workload);
    table.push(vec![
        "AutoMon".into(),
        plain.messages.to_string(),
        "0".into(),
        "0".into(),
        f(plain.max_error),
    ]);
    let hybrid = run_hybrid(
        &bench.f,
        &bench.workload,
        MonitorConfig::builder(eps).build(),
        HybridConfig {
            switch_threshold: 0.7,
            rate_window: 20,
            period: 1,
            cooldown: 60,
        },
    );
    table.push(vec![
        "Hybrid(AutoMon→Periodic)".into(),
        hybrid.run.messages.to_string(),
        hybrid.fallbacks.to_string(),
        hybrid.periodic_rounds.to_string(),
        f(hybrid.run.max_error),
    ]);
    table
}

/// All design ablations.
pub fn run(scale: Scale) -> Vec<Table> {
    vec![
        dc_heuristic(scale),
        e_vs_x(scale),
        eigen_objective(scale),
        hybrid_fallback(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e_dominates_x_on_constant_hessian() {
        let t = e_vs_x(Scale::Quick);
        let msgs: Vec<usize> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        // ADCD-E (row 0) must use no more messages than forced ADCD-X.
        assert!(msgs[0] <= msgs[1], "{msgs:?}");
    }

    #[test]
    fn gershgorin_is_no_less_safe() {
        let t = eigen_objective(Scale::Quick);
        for row in &t.rows {
            let err: f64 = row[4].parse().unwrap();
            assert!(err <= 0.1 + 1e-9, "{row:?}");
        }
    }
}
