//! Figure 1: the ADCD local constraints for `sin(x)` at `x0 = π/2`.
//!
//! The paper's illustration fixes `L = 0.8`, `U = 1.2` and global
//! curvature extremes `λ⁻ = -1`, `λ⁺ = 1`, and reads off:
//!
//! * admissible region `[0.927, 2.214]` (panel a),
//! * convex-difference safe zone `≈ [0.938, 2.203]` (panel b),
//! * concave-difference safe zone `≈ [1.121, 2.021]` (panel c; the axis
//!   ticks in the paper read 1.1206 and 2.0210).
//!
//! This experiment recomputes all six boundaries by bisection on the
//! actual constraint implementations — digit-level agreement is the
//! strongest check that eqs. (4)/(5) are implemented exactly.

use std::sync::Arc;

use automon_autodiff::AutoDiffFn;
use automon_core::{Curvature, DcKind, MonitoredFunction, SafeZone};
use automon_functions::Sine;

use crate::{f, Scale, Table};

fn zone(dc: DcKind) -> SafeZone {
    SafeZone {
        x0: vec![std::f64::consts::FRAC_PI_2],
        f0: 1.0,
        grad0: vec![0.0],
        l: 0.8,
        u: 1.2,
        dc,
        curvature: Curvature::Scalar(1.0),
        neighborhood: None,
    }
}

/// Bisect the boundary of `inside` within `[lo, hi]`, assuming exactly
/// one crossing.
fn bisect(mut lo: f64, mut hi: f64, inside: impl Fn(f64) -> bool) -> f64 {
    // Establish orientation: `lo` side state.
    let lo_in = inside(lo);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if inside(mid) == lo_in {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Run the Figure 1 boundary computation.
pub fn run(_scale: Scale) -> Vec<Table> {
    let sine: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(Sine));
    let mut table = Table::new(
        "fig1_safezone_boundaries",
        &["region", "left", "right", "paper_left", "paper_right"],
    );

    // (a) Admissible region: sin(x) ≥ 0.8 around π/2.
    let admissible = |x: f64| x.sin() >= 0.8;
    let a_left = bisect(0.5, std::f64::consts::FRAC_PI_2, admissible);
    let a_right = bisect(std::f64::consts::FRAC_PI_2, 2.6, admissible);
    table.push(vec![
        "admissible".into(),
        f(a_left),
        f(a_right),
        "0.927".into(),
        "2.214".into(),
    ]);

    // (b) Convex-difference safe zone.
    let zc = zone(DcKind::ConvexDiff);
    let f_ref = sine.clone();
    let inside = move |x: f64| zc.contains(f_ref.as_ref(), &[x]);
    let b_left = bisect(0.5, std::f64::consts::FRAC_PI_2, &inside);
    let b_right = bisect(std::f64::consts::FRAC_PI_2, 2.6, &inside);
    table.push(vec![
        "convex difference".into(),
        f(b_left),
        f(b_right),
        "0.938".into(),
        "2.203".into(),
    ]);

    // (c) Concave-difference safe zone.
    let zk = zone(DcKind::ConcaveDiff);
    let f_ref = sine.clone();
    let inside = move |x: f64| zk.contains(f_ref.as_ref(), &[x]);
    let c_left = bisect(0.5, std::f64::consts::FRAC_PI_2, &inside);
    let c_right = bisect(std::f64::consts::FRAC_PI_2, 2.6, &inside);
    table.push(vec![
        "concave difference".into(),
        f(c_left),
        f(c_right),
        "1.1206".into(),
        "2.0210".into(),
    ]);

    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_match_paper_to_three_decimals() {
        let t = &run(Scale::Quick)[0];
        let get = |row: usize, col: usize| -> f64 { t.rows[row][col].parse().unwrap() };
        // Admissible region.
        assert!((get(0, 1) - 0.9273).abs() < 1e-3);
        assert!((get(0, 2) - 2.2143).abs() < 1e-3);
        // Convex difference.
        assert!((get(1, 1) - 0.938).abs() < 2e-3);
        assert!((get(1, 2) - 2.203).abs() < 2e-3);
        // Concave difference (paper's axis ticks).
        assert!((get(2, 1) - 1.1206).abs() < 2e-3);
        assert!((get(2, 2) - 2.0210).abs() < 2e-3);
        // Both safe zones sit inside the admissible region.
        assert!(get(1, 1) >= get(0, 1) - 1e-6);
        assert!(get(2, 1) >= get(0, 1) - 1e-6);
        assert!(get(1, 2) <= get(0, 2) + 1e-6);
        assert!(get(2, 2) <= get(0, 2) + 1e-6);
    }
}
