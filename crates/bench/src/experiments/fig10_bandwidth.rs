//! Figure 10 and §4.7: bandwidth over the (simulated) deployment.
//!
//! Top: the error–bandwidth tradeoff (total payload bytes per run vs max
//! error) for all four functions. Bottom: AutoMon's payload and total
//! traffic (payload + per-message transport overhead) across ε, against
//! centralization's payload/traffic anchors.
//!
//! Substitution note (DESIGN.md §4): the paper ran Amazon ECS clusters
//! with ZeroMQ and measured traffic with Nethogs; here the wire codec
//! produces real payload bytes and the transport overhead is modeled as
//! a fixed per-message framing cost. The §4.7 "simulation vs deployment"
//! message-count check is reproduced by randomizing the per-round node
//! update order (the timing jitter the paper blames for its ≤16.6%
//! difference) and reporting the message-count delta.

use automon_core::{EigenSearch, MonitorConfig};
use automon_sim::{run_centralization, Workload};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::funcs::{self, Bench};
use crate::{f, Scale, Table};

/// Modeled per-message transport overhead (TCP/IP + framing), bytes.
const OVERHEAD: usize = 66;

fn light(eps: f64) -> MonitorConfig {
    MonitorConfig::builder(eps)
        .eigen_search(EigenSearch {
            probes: 4,
            nm_iters: 12,
            seed: 10,
            ..Default::default()
        })
        .build()
}

/// Shuffle the order of same-round updates (deployment timing jitter).
fn jittered(workload: &Workload, seed: u64) -> Workload {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut rounds: Vec<Vec<(usize, Vec<f64>)>> = (0..workload.rounds())
        .map(|t| workload.updates(t).to_vec())
        .collect();
    for r in &mut rounds {
        r.shuffle(&mut rng);
    }
    // Rebuild through the dense constructor by node series ordering.
    let n = workload.nodes();
    let mut series: Vec<Vec<Vec<f64>>> = vec![Vec::new(); n];
    for r in &rounds {
        for (node, x) in r {
            series[*node].push(x.clone());
        }
    }
    // For event-driven workloads fall back to per-event jitter of
    // adjacent pairs to preserve the one-per-round shape.
    if rounds.iter().all(|r| r.len() == 1) {
        let mut events: Vec<(usize, Vec<f64>)> =
            rounds.into_iter().map(|mut r| r.pop().unwrap()).collect();
        for i in (1..events.len()).step_by(17) {
            events.swap(i - 1, i);
        }
        Workload::from_events(n, &events)
    } else {
        Workload::from_dense(&series)
    }
}

fn sweep(
    bandwidth: &mut Table,
    simdep: &mut Table,
    bench: &Bench,
    name: &str,
    epsilons: &[f64],
) {
    let central = run_centralization(&bench.f, &bench.workload);
    bandwidth.push(vec![
        name.into(),
        "Centralization".into(),
        "-".into(),
        central.messages.to_string(),
        central.payload_bytes.to_string(),
        (central.payload_bytes + OVERHEAD * central.messages).to_string(),
        f(central.max_error),
    ]);
    for &eps in epsilons {
        let stats = funcs::run_tuned(bench, light(eps));
        bandwidth.push(vec![
            name.into(),
            "AutoMon".into(),
            f(eps),
            stats.messages.to_string(),
            stats.payload_bytes.to_string(),
            (stats.payload_bytes + OVERHEAD * stats.messages).to_string(),
            f(stats.max_error),
        ]);
        // §4.7 validation: the same run under deployment-style jitter.
        let jit_bench = Bench {
            name: bench.name.clone(),
            f: bench.f.clone(),
            workload: jittered(&bench.workload, 0xD3 + (eps * 1000.0) as u64),
        };
        let jit = funcs::run_tuned(&jit_bench, light(eps));
        let diff =
            100.0 * (jit.messages as f64 - stats.messages as f64).abs() / stats.messages as f64;
        simdep.push(vec![
            name.into(),
            f(eps),
            stats.messages.to_string(),
            jit.messages.to_string(),
            f(diff),
        ]);
    }
}

/// Run the Figure 10 study.
pub fn run(scale: Scale) -> Vec<Table> {
    let (rounds, records) = match scale {
        Scale::Quick => (500, 1500),
        Scale::Full => (1000, 40_000),
    };
    let mut bandwidth = Table::new(
        "fig10_bandwidth",
        &[
            "function",
            "algorithm",
            "epsilon",
            "messages",
            "payload_bytes",
            "traffic_bytes",
            "max_error",
        ],
    );
    let mut simdep = Table::new(
        "sec4_7_simulation_vs_deployment",
        &["function", "epsilon", "sim_messages", "deploy_messages", "diff_pct"],
    );
    let mut delta = Table::new(
        "sec5_delta_compression_opportunity",
        &["function", "dense_bytes", "delta_bytes", "saving_pct"],
    );

    let ip = funcs::inner_product(40, 10, rounds, 0xF1610);
    sweep(&mut bandwidth, &mut simdep, &ip, "InnerProduct", &[0.05, 0.1, 0.2, 0.8]);
    delta_row(&mut delta, &ip, "InnerProduct");
    let quad = funcs::quadratic(40, 10, rounds, 0xF1610);
    sweep(&mut bandwidth, &mut simdep, &quad, "Quadratic", &[0.03, 0.04, 0.08, 1.0]);
    delta_row(&mut delta, &quad, "Quadratic");
    let kld = funcs::kld(20, 12, rounds, 0xF1610);
    sweep(&mut bandwidth, &mut simdep, &kld, "KLD", &[0.02, 0.05, 0.1, 0.2]);
    delta_row(&mut delta, &kld, "KLD");
    let dnn = funcs::dnn_intrusion(records, 0xF1610);
    sweep(&mut bandwidth, &mut simdep, &dnn, "DNN", &[0.005, 0.01, 0.02]);
    delta_row(&mut delta, &dnn, "DNN");

    vec![bandwidth, simdep, delta]
}

/// §5 future-work quantification: bytes to ship node 0's local-vector
/// series densely vs sparse-delta encoded (`automon_net::delta`).
fn delta_row(table: &mut Table, bench: &Bench, name: &str) {
    let series = bench.workload.to_node_series();
    let (dense, delta) = automon_net::delta::series_savings(&series[0], 1e-12);
    table.push(vec![
        name.into(),
        dense.to_string(),
        delta.to_string(),
        f(100.0 * (1.0 - delta as f64 / dense as f64)),
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_preserves_workload_volume() {
        let bench = funcs::inner_product(4, 3, 60, 1);
        let jit = jittered(&bench.workload, 7);
        assert_eq!(jit.rounds(), bench.workload.rounds());
        assert_eq!(jit.nodes(), bench.workload.nodes());
        let a: usize = (0..jit.rounds()).map(|t| jit.updates(t).len()).sum();
        let b: usize =
            (0..bench.workload.rounds()).map(|t| bench.workload.updates(t).len()).sum();
        assert_eq!(a, b);
    }

    #[test]
    fn traffic_exceeds_payload_by_overhead() {
        let bench = funcs::inner_product(4, 3, 80, 2);
        let mut bw = Table::new("t", &["function", "algorithm", "epsilon", "messages", "payload_bytes", "traffic_bytes", "max_error"]);
        let mut sd = Table::new("u", &["function", "epsilon", "sim_messages", "deploy_messages", "diff_pct"]);
        sweep(&mut bw, &mut sd, &bench, "IP", &[0.2]);
        for row in &bw.rows {
            let msgs: usize = row[3].parse().unwrap();
            let payload: usize = row[4].parse().unwrap();
            let traffic: usize = row[5].parse().unwrap();
            assert_eq!(traffic, payload + OVERHEAD * msgs);
        }
    }
}
