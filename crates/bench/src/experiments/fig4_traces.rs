//! Figure 4: the monitored value of every evaluation function over time,
//! with the additive approximation band `f(x0) ± ε`.
//!
//! The paper's panels: DNN, KLD, MLP-40, MLP-2, Quadratic, Inner Product,
//! each at its default dimension. This harness emits one trace table per
//! panel: `(round, truth, estimate, lower, upper)`.

use automon_core::{EigenSearch, MonitorConfig};
use automon_sim::Simulation;

use crate::funcs::{self, Bench};
use crate::{f, Scale, Table};

/// Default additive bounds per panel (chosen to match the visible band
/// width in the paper's Figure 4 relative to each function's range).
const PANELS: &[(&str, f64)] = &[
    ("DNN", 0.02),
    ("KLD", 0.05),
    ("MLP-40", 0.2),
    ("MLP-2", 0.15),
    ("Quadratic", 0.05),
    ("InnerProduct", 0.5),
];

fn build(name: &str, scale: Scale) -> Bench {
    let (rounds, records) = match scale {
        Scale::Quick => (500, 1500),
        Scale::Full => (1000, 20_000),
    };
    match name {
        "DNN" => funcs::dnn_intrusion(records, 0xF164),
        "KLD" => funcs::kld(20, 12, rounds * 2, 0xF164),
        "MLP-40" => funcs::mlp_d(40, 10, rounds, 0xF164),
        "MLP-2" => funcs::mlp_d(2, 10, rounds, 0xF164),
        "Quadratic" => funcs::quadratic(40, 10, rounds, 0xF164),
        "InnerProduct" => funcs::inner_product(40, 10, rounds, 0xF164),
        other => panic!("unknown panel {other}"),
    }
}

/// Run the Figure 4 traces.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut out = Vec::new();
    for &(name, eps) in PANELS {
        let bench = build(name, scale);
        let cfg = MonitorConfig::builder(eps)
            .eigen_search(EigenSearch {
                probes: 4,
                nm_iters: 12,
                seed: 4,
            ..Default::default()
        })
            .build();
        let stride = (bench.workload.rounds() / 200).max(1);
        let stats = Simulation::new(bench.f.clone(), cfg)
            .with_trace(stride)
            .run(&bench.workload);
        let mut table = Table::new(
            &format!("fig4_trace_{}", name.to_lowercase().replace('-', "_")),
            &["round", "truth", "estimate", "lower", "upper"],
        );
        for p in stats.trace.as_deref().unwrap_or(&[]) {
            table.push(vec![
                p.round.to_string(),
                f(p.truth),
                f(p.estimate),
                f(p.lower),
                f(p.upper),
            ]);
        }
        out.push(table);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_panel_builds() {
        // One cheap panel end to end (the full set runs in the harness).
        let bench = build("InnerProduct", Scale::Quick);
        let cfg = MonitorConfig::builder(0.5).build();
        let stats = Simulation::new(bench.f.clone(), cfg)
            .with_trace(50)
            .run(&bench.workload);
        assert!(stats.trace.unwrap().len() > 2);
    }
}
