//! One module per table/figure of the paper's evaluation (§4).
//!
//! Each `run(scale)` returns the tables it regenerates; binaries print
//! and persist them via [`crate::emit`].

pub mod ablation_design;
pub mod fig1_safezone;
pub mod fig2_tradeoff;
pub mod fig10_bandwidth;
pub mod fig3_neighborhood;
pub mod fig4_traces;
pub mod fig5_tradeoff;
pub mod fig6_percentiles;
pub mod fig7_scalability;
pub mod fig8_tuning;
pub mod fig9_ablation;
