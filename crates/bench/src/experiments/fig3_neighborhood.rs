//! Figure 3: the effect of neighborhood size `r` on the number of
//! violations while monitoring Rozenbrock at several error bounds.
//!
//! Paper setup: Rozenbrock, inputs N(0, 0.2²),
//! ε ∈ {0.05, 0.25, 0.95}, violations (neighborhood and safe-zone)
//! counted over a sweep of `r`; the optimal `r*` minimizes their total.

use automon_core::tuning;
use automon_core::MonitorConfig;

use crate::funcs;
use crate::{f, Scale, Table};

/// Run the Figure 3 sweep.
pub fn run(scale: Scale) -> Vec<Table> {
    let rounds = match scale {
        Scale::Quick => 400,
        Scale::Full => 1000,
    };
    let nodes = 10;
    let bench = funcs::rozenbrock(nodes, rounds, 0xF163);
    let series = bench.workload.to_node_series();

    let radii: Vec<f64> = (1..=12).map(|i| i as f64 * 0.02).collect();
    let mut table = Table::new(
        "fig3_neighborhood_size",
        &[
            "epsilon",
            "r",
            "neighborhood_violations",
            "safezone_violations",
            "total",
        ],
    );
    let mut optima = Table::new("fig3_optimal_r", &["epsilon", "r_star", "min_total"]);

    for eps in [0.05, 0.25, 0.95] {
        let cfg = MonitorConfig::builder(eps).build();
        let grid = tuning::evaluate_grid(&bench.f, &series, &radii, &cfg);
        let mut best = (radii[0], usize::MAX);
        for (r, counts) in &grid {
            let total = counts.total_violations();
            table.push(vec![
                f(eps),
                f(*r),
                counts.neighborhood.to_string(),
                counts.safezone.to_string(),
                total.to_string(),
            ]);
            if total < best.1 {
                best = (*r, total);
            }
        }
        optima.push(vec![f(eps), f(best.0), best.1.to_string()]);
    }
    vec![table, optima]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_rows_for_each_epsilon_and_radius() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 3 * 12);
        assert_eq!(tables[1].rows.len(), 3);
    }
}
