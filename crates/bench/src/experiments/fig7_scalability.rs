//! Figure 7 and the §4.4 scalability study.
//!
//! (a) messages vs input dimension `d` for KLD, MLP-d, Inner Product
//!     (n = 12, 1000 rounds after windows fill → centralization cost of
//!     1000 messages per node);
//! (b) messages vs node count for MLP-40 and Inner Product (d = 40) —
//!     the paper's finding is that the AutoMon/Centralization ratio stays
//!     fixed as nodes are added;
//! plus the full-sync runtime table of §4.4 (ADCD-X grows with `d`,
//! ADCD-E stays flat after its one-time eigendecomposition).

use std::time::Instant;

use automon_core::{adcd, EigenSearch, MonitorConfig, NeighborhoodBox};
use automon_linalg::vector;

use crate::funcs;
use crate::{f, Scale, Table};

fn light(eps: f64) -> MonitorConfig {
    MonitorConfig::builder(eps)
        .eigen_search(EigenSearch {
            probes: 4,
            nm_iters: 12,
            seed: 7,
            ..Default::default()
        })
        .build()
}

/// Figure 7(a): impact of dimension.
pub fn run_dimensions(scale: Scale) -> Table {
    let dims: Vec<usize> = match scale {
        Scale::Quick => vec![10, 20, 40],
        Scale::Full => vec![10, 20, 40, 100, 150, 200],
    };
    let (n, rounds) = (12, match scale {
        Scale::Quick => 400,
        Scale::Full => 1000,
    });
    let mut table = Table::new(
        "fig7a_dimension_scaling",
        &["function", "d", "messages", "centralization"],
    );
    for &d in &dims {
        let central = n * rounds;
        let kld = funcs::kld(d, n, rounds, 0xF167);
        let s = funcs::run_tuned(&kld, light(0.1));
        table.push(vec!["KLD".into(), d.to_string(), s.messages.to_string(), central.to_string()]);

        let mlp = funcs::mlp_d(d, n, rounds, 0xF167);
        let s = funcs::run_tuned(&mlp, light(0.2));
        table.push(vec![
            "MLP-d".into(),
            d.to_string(),
            s.messages.to_string(),
            central.to_string(),
        ]);

        let ip = funcs::inner_product(d, n, rounds, 0xF167);
        let s = funcs::run_tuned(&ip, light(0.2));
        table.push(vec![
            "InnerProduct".into(),
            d.to_string(),
            s.messages.to_string(),
            central.to_string(),
        ]);
    }
    table
}

/// Figure 7(b): impact of node count.
pub fn run_nodes(scale: Scale) -> Table {
    let node_counts: Vec<usize> = match scale {
        Scale::Quick => vec![10, 30, 100],
        Scale::Full => vec![10, 30, 100, 300, 1000],
    };
    let rounds = match scale {
        Scale::Quick => 300,
        Scale::Full => 1000,
    };
    let mut table = Table::new(
        "fig7b_node_scaling",
        &["function", "nodes", "messages", "centralization", "ratio"],
    );
    for &n in &node_counts {
        let central = n * rounds;
        let ip = funcs::inner_product(40, n, rounds, 0xF167);
        let s = funcs::run_tuned(&ip, light(0.2));
        table.push(vec![
            "InnerProduct(d=40)".into(),
            n.to_string(),
            s.messages.to_string(),
            central.to_string(),
            f(s.messages as f64 / central as f64),
        ]);
        // MLP-40 is the costlier ADCD-X arm; cap it at moderate n in
        // quick mode.
        if matches!(scale, Scale::Full) || n <= 30 {
            let mlp = funcs::mlp_d(40, n, rounds, 0xF167);
            let s = funcs::run_tuned(&mlp, light(0.2));
            table.push(vec![
                "MLP-40".into(),
                n.to_string(),
                s.messages.to_string(),
                central.to_string(),
                f(s.messages as f64 / central as f64),
            ]);
        }
    }
    table
}

/// §4.4 runtime table: one full-sync decomposition per function and
/// dimension, timed (the Criterion benches measure the same operations
/// with statistical rigor; this table gives the quick overview).
pub fn run_sync_runtime(scale: Scale) -> Table {
    let dims: Vec<usize> = match scale {
        Scale::Quick => vec![10, 40],
        Scale::Full => vec![10, 40, 100, 200],
    };
    let mut table = Table::new(
        "sec4_4_full_sync_runtime",
        &["function", "adcd", "d", "millis"],
    );
    for &d in &dims {
        // KLD → ADCD-X with the λ search over a neighborhood.
        let kld = funcs::kld(d, 4, 60, 1);
        let series = kld.workload.to_node_series();
        let x0 = vector::mean(&series.iter().map(|s| s[0].clone()).collect::<Vec<_>>()).unwrap();
        let b = NeighborhoodBox {
            lo: x0.iter().map(|v| (v - 0.05).max(0.0)).collect(),
            hi: x0.iter().map(|v| (v + 0.05).min(1.0)).collect(),
        };
        let cfg = light(0.1);
        let t = Instant::now();
        let _ = adcd::decompose(kld.f.as_ref(), &x0, Some(&b), &cfg);
        table.push(vec![
            "KLD".into(),
            "X".into(),
            d.to_string(),
            f(t.elapsed().as_secs_f64() * 1e3),
        ]);

        // Inner Product → ADCD-E, eigendecomposition only.
        let ip = funcs::inner_product(d, 4, 60, 1);
        let x0 = vec![0.1; d];
        let t = Instant::now();
        let _ = adcd::decompose(ip.f.as_ref(), &x0, None, &cfg);
        table.push(vec![
            "InnerProduct".into(),
            "E".into(),
            d.to_string(),
            f(t.elapsed().as_secs_f64() * 1e3),
        ]);
    }
    table
}

/// All Figure 7 tables.
pub fn run(scale: Scale) -> Vec<Table> {
    vec![
        run_dimensions(scale),
        run_nodes(scale),
        run_sync_runtime(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_table_has_both_variants() {
        let t = run_sync_runtime(Scale::Quick);
        assert_eq!(t.rows.len(), 4);
        assert!(t.rows.iter().any(|r| r[1] == "X"));
        assert!(t.rows.iter().any(|r| r[1] == "E"));
    }
}
