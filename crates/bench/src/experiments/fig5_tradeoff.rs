//! Figure 5: the error–communication tradeoff — the paper's headline
//! comparison.
//!
//! For each function (Inner Product, Quadratic, KLD, DNN), every
//! algorithm is run across its parameter sweep: AutoMon and CB over
//! approximation bounds ε, Periodic over periods P, and Centralization as
//! the fixed upper-right anchor. Each run contributes one
//! `(messages, max_error)` point; "lower and to the left is better".

use automon_core::{EigenSearch, MonitorConfig};
use automon_sim::{run_centralization, run_convex_bound, run_periodic};

use crate::funcs::{self, Bench};
use crate::{f, Scale, Table};

/// ε sweeps per function (ranges follow the value scales in Figure 4).
fn epsilons(name: &str) -> Vec<f64> {
    match name {
        "InnerProduct" => vec![0.05, 0.1, 0.2, 0.4, 0.8],
        "Quadratic" => vec![0.03, 0.06, 0.12, 0.3, 1.0],
        "KLD" => vec![0.02, 0.05, 0.1, 0.2, 0.4],
        "DNN" => vec![0.005, 0.01, 0.02, 0.05],
        other => panic!("unknown function {other}"),
    }
}

const PERIODS: &[usize] = &[1, 2, 5, 10, 20, 50, 100];

fn light_search(eps: f64) -> MonitorConfig {
    MonitorConfig::builder(eps)
        .eigen_search(EigenSearch {
            probes: 4,
            nm_iters: 12,
            seed: 5,
            ..Default::default()
        })
        .build()
}

/// Run one function's sweep into `table`.
fn sweep(table: &mut Table, bench: &Bench, name: &str, with_cb: bool) {
    for &eps in &epsilons(name) {
        let stats = funcs::run_tuned(bench, light_search(eps));
        table.push(vec![
            name.into(),
            "AutoMon".into(),
            f(eps),
            stats.messages.to_string(),
            f(stats.max_error),
        ]);
        if with_cb {
            let cb = run_convex_bound(&bench.f, &bench.workload, eps);
            table.push(vec![
                name.into(),
                "CB".into(),
                f(eps),
                cb.messages.to_string(),
                f(cb.max_error),
            ]);
        }
    }
    for &p in PERIODS {
        let stats = run_periodic(&bench.f, &bench.workload, p);
        table.push(vec![
            name.into(),
            "Periodic".into(),
            p.to_string(),
            stats.messages.to_string(),
            f(stats.max_error),
        ]);
    }
    let stats = run_centralization(&bench.f, &bench.workload);
    table.push(vec![
        name.into(),
        "Centralization".into(),
        "-".into(),
        stats.messages.to_string(),
        f(stats.max_error),
    ]);
}

/// Run the Figure 5 sweeps.
pub fn run(scale: Scale) -> Vec<Table> {
    let (rounds, records) = match scale {
        Scale::Quick => (600, 2000),
        Scale::Full => (1000, 40_000),
    };
    let mut table = Table::new(
        "fig5_error_vs_messages",
        &["function", "algorithm", "param", "messages", "max_error"],
    );
    let ip = funcs::inner_product(40, 10, rounds, 0xF165);
    sweep(&mut table, &ip, "InnerProduct", true);
    let quad = funcs::quadratic(40, 10, rounds, 0xF165);
    sweep(&mut table, &quad, "Quadratic", false);
    let kld = funcs::kld(20, 12, rounds * 2, 0xF165);
    sweep(&mut table, &kld, "KLD", false);
    let dnn = funcs::dnn_intrusion(records, 0xF165);
    sweep(&mut table, &dnn, "DNN", false);
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inner_product_sweep_shape() {
        // Small standalone sweep to keep tests fast.
        let bench = funcs::inner_product(4, 3, 150, 1);
        let mut table = Table::new("t", &["function", "algorithm", "param", "messages", "max_error"]);
        sweep(&mut table, &bench, "InnerProduct", true);
        // 5 ε × (AutoMon + CB) + 7 periods + 1 centralization.
        assert_eq!(table.rows.len(), 5 * 2 + 7 + 1);
        // AutoMon error must respect its ε for this constant-Hessian f.
        for row in &table.rows {
            if row[1] == "AutoMon" {
                let eps: f64 = row[2].parse().unwrap();
                let err: f64 = row[4].parse().unwrap();
                assert!(err <= eps + 1e-9, "{row:?}");
            }
        }
    }
}
