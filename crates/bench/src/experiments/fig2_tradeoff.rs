//! Figure 2: the neighborhood-size / safe-zone-size tradeoff.
//!
//! The paper's Figure 2 is a schematic: a small neighborhood `B` yields a
//! large safe zone (but many neighborhood violations), a large `B` yields
//! a small safe zone. Here the picture is *computed* for a real function
//! (Rozenbrock at a reference point): for each radius we run ADCD-X over
//! `B`, build the actual safe zone, and measure the areas by grid
//! sampling — emitting both the area table and an SVG rendering of
//! admissible region, box, and zone.

use std::sync::Arc;

use automon_autodiff::AutoDiffFn;
use automon_core::{adcd, MonitorConfig, MonitoredFunction, NeighborhoodBox, SafeZone};
use automon_functions::Rozenbrock;

use crate::plot::{Chart, Series};
use crate::{f, results_dir, Scale, Table};

const GRID: usize = 90;
const SPAN: f64 = 0.8; // half-width of the sampled square around x0

struct ZoneGeometry {
    admissible: Vec<(f64, f64)>,
    in_zone: Vec<(f64, f64)>,
    box_corners: (f64, f64, f64, f64),
    admissible_count: usize,
    zone_count: usize,
    zone_in_box_count: usize,
}

fn geometry(r: f64, eps: f64) -> ZoneGeometry {
    let func: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(Rozenbrock));
    let x0 = vec![0.1, 0.05];
    let f0 = func.eval(&x0);
    let (_, grad0) = func.eval_grad(&x0);
    let b = NeighborhoodBox {
        lo: vec![x0[0] - r, x0[1] - r],
        hi: vec![x0[0] + r, x0[1] + r],
    };
    let cfg = MonitorConfig::builder(eps).build();
    let dec = adcd::decompose(func.as_ref(), &x0, Some(&b), &cfg);
    // Zone without the box, so membership can be classified separately.
    let zone = SafeZone {
        x0: x0.clone(),
        f0,
        grad0,
        l: f0 - eps,
        u: f0 + eps,
        dc: dec.dc,
        curvature: dec.curvature.clone(),
        neighborhood: None,
    };

    let mut admissible = Vec::new();
    let mut in_zone = Vec::new();
    let (mut n_adm, mut n_zone, mut n_zone_box) = (0usize, 0usize, 0usize);
    for i in 0..GRID {
        for j in 0..GRID {
            let x = x0[0] - SPAN + 2.0 * SPAN * i as f64 / (GRID - 1) as f64;
            let y = x0[1] - SPAN + 2.0 * SPAN * j as f64 / (GRID - 1) as f64;
            let p = [x, y];
            let v = func.eval(&p);
            let adm = (v - f0).abs() <= eps;
            let zone_ok = zone.contains(func.as_ref(), &p);
            if adm {
                n_adm += 1;
                admissible.push((x, y));
            }
            if zone_ok {
                n_zone += 1;
                if b.contains(&p) {
                    n_zone_box += 1;
                }
                in_zone.push((x, y));
            }
        }
    }
    ZoneGeometry {
        admissible,
        in_zone,
        box_corners: (x0[0] - r, x0[1] - r, x0[0] + r, x0[1] + r),
        admissible_count: n_adm,
        zone_count: n_zone,
        zone_in_box_count: n_zone_box,
    }
}

/// Run the Figure 2 computation.
pub fn run(_scale: Scale) -> Vec<Table> {
    let eps = 0.5;
    let mut table = Table::new(
        "fig2_neighborhood_tradeoff",
        &[
            "r",
            "admissible_pts",
            "safezone_pts",
            "safezone_in_box_pts",
            "zone_fraction_of_admissible",
        ],
    );
    for (label, r) in [("small", 0.08), ("large", 0.8)] {
        let g = geometry(r, eps);
        table.push(vec![
            format!("{r} ({label})"),
            g.admissible_count.to_string(),
            g.zone_count.to_string(),
            g.zone_in_box_count.to_string(),
            f(g.zone_count as f64 / g.admissible_count.max(1) as f64),
        ]);

        // SVG: admissible cloud, safe-zone cloud, box outline.
        let mut chart = Chart::new(
            &format!("fig2 — Rozenbrock zone, r = {r} ({label})"),
            "x1",
            "x2",
        );
        chart.push(Series::scatter("admissible", g.admissible));
        chart.push(Series::scatter("safe zone", g.in_zone));
        let (lx, ly, hx, hy) = g.box_corners;
        chart.push(Series::line(
            "neighborhood B",
            vec![(lx, ly), (hx, ly), (hx, hy), (lx, hy), (lx, ly)],
        ));
        if let Err(e) = chart.write_svg(&results_dir(), &format!("fig2_zone_r_{label}")) {
            eprintln!("(could not write fig2 chart: {e})");
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smaller_neighborhood_gives_larger_zone() {
        // The paper's Figure 2 claim, computed: the safe zone from the
        // small box covers at least as much of the admissible region as
        // the one from the large box.
        let small = geometry(0.08, 0.5);
        let large = geometry(0.8, 0.5);
        assert!(
            small.zone_count >= large.zone_count,
            "small-r zone {} pts vs large-r zone {} pts",
            small.zone_count,
            large.zone_count
        );
        // Both zones stay inside the admissible region.
        assert!(small.zone_count <= small.admissible_count);
        assert!(large.zone_count <= large.admissible_count);
    }
}
