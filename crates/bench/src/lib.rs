//! Benchmark harness regenerating every table and figure of the AutoMon
//! evaluation (paper §4).
//!
//! Each experiment lives in [`experiments`] as a library function
//! returning printable rows; the `src/bin/fig*.rs` binaries are thin
//! wrappers, and `src/bin/all_experiments.rs` runs everything. Results
//! are printed as aligned tables and written as CSV under
//! `bench_results/`.
//!
//! Experiment scale: the default is sized to finish on a laptop in
//! minutes. Set `AUTOMON_FULL=1` for paper-scale dimensions, node counts,
//! and stream lengths (see DESIGN.md §5 for the per-figure mapping).

pub mod charts;
pub mod experiments;
pub mod funcs;
pub mod plot;

use std::fs;
use std::path::{Path, PathBuf};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-sized defaults.
    Quick,
    /// Paper-scale sweeps (`AUTOMON_FULL=1`).
    Full,
}

impl Scale {
    /// Read the scale from the environment.
    pub fn from_env() -> Self {
        if std::env::var("AUTOMON_FULL").map(|v| v == "1").unwrap_or(false) {
            Scale::Full
        } else {
            Scale::Quick
        }
    }
}

/// A printable result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table name; doubles as the CSV file stem.
    pub name: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table.
    pub fn new(name: &str, header: &[&str]) -> Self {
        Self {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "Table::push: column mismatch");
        self.rows.push(row);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&format!("== {} ==\n", self.name));
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Write as CSV into `dir`, returning the path.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        let mut s = self.header.join(",");
        s.push('\n');
        for row in &self.rows {
            s.push_str(&row.join(","));
            s.push('\n');
        }
        fs::write(&path, s)?;
        Ok(path)
    }
}

/// The default results directory (`bench_results/` under the workspace).
pub fn results_dir() -> PathBuf {
    PathBuf::from(
        std::env::var("AUTOMON_RESULTS_DIR").unwrap_or_else(|_| "bench_results".to_string()),
    )
}

/// Print a table, persist it as CSV, and (for known figures) render the
/// paper-shaped SVG charts alongside.
pub fn emit(table: &Table) {
    println!("{}", table.render());
    let dir = results_dir();
    match table.write_csv(&dir) {
        Ok(path) => println!("(written to {})", path.display()),
        Err(e) => eprintln!("(could not write CSV: {e})"),
    }
    for (k, chart) in charts::charts_from_table(table).iter().enumerate() {
        let stem = if k == 0 {
            table.name.clone()
        } else {
            format!("{}_{k}", table.name)
        };
        match chart.write_svg(&dir, &stem) {
            Ok(path) => println!("(chart {})", path.display()),
            Err(e) => eprintln!("(could not write chart: {e})"),
        }
    }
    println!();
}

/// Format a float compactly for table cells.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.5}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_and_csv() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.push(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("bb"));
        let dir = std::env::temp_dir().join("automon_bench_test");
        let path = t.write_csv(&dir).unwrap();
        let body = std::fs::read_to_string(path).unwrap();
        assert_eq!(body, "a,bb\n1,2\n");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1234.6), "1235");
        assert_eq!(f(2.5), "2.500");
        assert_eq!(f(0.123456), "0.12346");
    }

    #[test]
    #[should_panic(expected = "column mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a"]);
        t.push(vec!["1".into(), "2".into()]);
    }
}
