//! Library backing the `automon` command-line tool.
//!
//! Two subcommands:
//!
//! * `automon simulate` — run a built-in evaluation workload (the paper's
//!   functions and datasets) and print the communication/error summary.
//! * `automon monitor` — run the monitoring protocol over a CSV stream of
//!   local-vector updates (`round,node,x1,...,xd`) with a chosen built-in
//!   function, writing per-round estimates.
//!
//! Argument parsing is hand-rolled (the project's dependency policy
//! admits no CLI crates); [`Args`] implements the small `--key value`
//! grammar both subcommands share.

mod args;
mod csvio;
mod netcmd;
mod run;
mod trace;

pub use args::{Args, CliError};
pub use csvio::{parse_csv_updates, render_estimates};
pub use netcmd::run_net_smoke;
pub use run::{build_function, run_monitor, run_simulate, run_spectral_smoke, run_tune, MonitorOutcome};
pub use trace::run_trace;

/// Entry point shared by `main.rs` and the tests.
///
/// Returns the text to print on success.
pub fn dispatch(argv: &[String]) -> Result<String, CliError> {
    match argv.first().map(String::as_str) {
        Some("simulate") => run_simulate(&Args::parse(&argv[1..])?),
        Some("monitor") => run_monitor(&Args::parse(&argv[1..])?),
        Some("tune") => run_tune(&Args::parse(&argv[1..])?),
        Some("spectral-smoke") => run_spectral_smoke(&Args::parse(&argv[1..])?),
        Some("net-smoke") => run_net_smoke(&Args::parse(&argv[1..])?),
        Some("trace") => run_trace(&argv[1..]),
        Some("help") | None => Ok(usage().to_string()),
        Some(other) => Err(CliError::new(format!(
            "unknown subcommand `{other}`\n\n{}",
            usage()
        ))),
    }
}

/// The help text.
pub fn usage() -> &'static str {
    "automon — automatic distributed monitoring of arbitrary functions

USAGE:
    automon simulate --function <NAME> [--epsilon E] [--nodes N]
                     [--rounds R] [--dim D] [--seed S] [--baseline SPEC]
                     [--parallelism P] [--spectral-backend B]
                     [--chaos-seed S] [--drop-rate P]
                     [--crash-node SPEC] [--partition SPEC]
                     [--crash-coordinator R] [--wal-dir DIR]
                     [--snapshot-every N] [--json]
                     [--metrics-out FILE] [--trace-out FILE]
                     [--serve-metrics ADDR] [--decomp-cache POLICY]
                     [--decomp-cache-capacity N] [--decomp-cache-warm]
                     [--fleet] [--shards S] [--leaf-epsilon-frac F]
                     [--crash-leaf SPEC]
    automon monitor  --function <NAME> --input <FILE.csv> --nodes N
                     [--epsilon E] [--output FILE.csv] [--parallelism P]
                     [--spectral-backend B] [--decomp-cache POLICY]
    automon tune     --function <NAME> --input <FILE.csv> --nodes N
                     [--epsilon E]
    automon spectral-smoke [--dim D] [--seed S] [--tol T]
    automon net-smoke [--net-backend B] [--nodes N] [--rounds R]
                     [--dim D] [--seed S] [--epsilon E] [--function NAME]
                     [--chaos-seed S] [--drop-rate P] [--duplicate-rate P]
                     [--reorder-rate P] [--delay-rate P] [--trace-out FILE]
    automon trace summarize --input FILE.jsonl
    automon trace diff --left A.jsonl --right B.jsonl
    automon help

FUNCTIONS (built-in):
    inner-product | quadratic | kld | variance | rozenbrock | mlp
    (dimension via --dim where applicable)

BASELINES (simulate only, repeatable):
    centralization | periodic:<P>

PARALLELISM:
    --parallelism 0 sizes the full-sync pipeline to the machine
    (default); 1 forces the sequential reference path; N uses N
    worker threads. Results are identical for every setting.

SPECTRAL BACKEND:
    --spectral-backend ql (default) uses the two-tier kernel:
    Householder + implicit-shift QL for full decompositions and
    matrix-free Lanczos for the ADCD-X extreme-eigenvalue search.
    `jacobi` is the legacy cyclic-Jacobi path (rollback switch).
    `automon spectral-smoke` cross-checks the three kernels on one
    deterministic matrix and exits non-zero on disagreement.

CHAOS (simulate only; any chaos flag switches to the fault-injecting
runner with retransmission, eviction, and rejoin enabled):
    --chaos-seed S      RNG seed; same seed replays the same faults
    --drop-rate P       drop each frame with probability P in [0, 1]
    --crash-node SPEC   `node:at[:restart]`, repeatable
    --partition SPEC    `n1[,n2,…]:from:until` (until exclusive), repeatable

DURABILITY (simulate only; docs/DURABILITY.md):
    --crash-coordinator R   crash the coordinator at round R and rebuild
                            it from the durable store (WAL + snapshot),
                            repeatable; the recovery full sync is charged
                            to the `recovery` ledger cause
    --wal-dir DIR           persist the store in real files under DIR
                            (default: deterministic in-memory backend;
                            both replay bit-identically under a seed)
    --snapshot-every N      checkpoint cadence in rounds (default 16);
                            mid-sync requests defer to the next quiescent
                            round instead of being skipped

DECOMPOSITION CACHE (off by default; DESIGN.md §3.11):
    --decomp-cache POLICY       memoize full-sync decompositions at the
                                coordinator; POLICY is lru-k | slru | arc.
                                Exact hits require bitwise-equal inputs,
                                so output is identical to a cache-off run
    --decomp-cache-capacity N   max resident entries (default 64)
    --decomp-cache-warm         let near hits (same cell, adjacent radius
                                bucket) warm-start the Lanczos eigen
                                search from cached Ritz vectors; results
                                then agree to tolerance, not bitwise

FLEET (simulate only; two-tier sharded hierarchy, DESIGN.md §3.14):
    --fleet                 shard the streams over leaf coordinators and
                            monitor f of the global average at a root
                            coordinator that treats each leaf's scaled
                            partial mean as one node stream; shard-local
                            violations resolve intra-shard and reach the
                            root only when the shard aggregate moves
    --shards S              leaf coordinators (default 8); requires --fleet
    --leaf-epsilon-frac F   fraction of ε given to the leaf tier, in
                            (0, 1) (default 0.5); the root gets the rest
    --crash-node SPEC       `node:at[:restart]`, repeatable — here a
                            deterministic membership schedule, not a
                            seeded chaos fault
    --crash-leaf SPEC       `leaf:at`, repeatable — permanently crash a
                            leaf coordinator; the next alive leaf adopts
                            its surviving streams (shard rebalance)
    Frame-level chaos (--chaos-seed/--drop-rate/--partition), coordinator
    durability (--crash-coordinator/--wal-dir/--snapshot-every), and
    --baseline are flat-runner features and are rejected with --fleet.

OBSERVABILITY (simulate only):
    --json              print the run statistics as one JSON object
                        (chaos runs add a `quiesced` field)
    --metrics-out FILE  dump final metrics in Prometheus text exposition
    --trace-out FILE    dump the structured event trace as JSONL; events
                        carry logical round/op counters, so the same
                        seed reproduces the file byte for byte
    --serve-metrics ADDR  serve live metrics at http://ADDR/metrics
                        while the run executes (e.g. 127.0.0.1:9100)

NET BACKENDS (net-smoke; DESIGN.md §3.15):
    --net-backend threaded  blocking TCP transport, reader thread per node
    --net-backend reactor   epoll event loop: coalesced reads, writev
                            batching, bounded outbound queues (default)
    --net-backend sim       the reactor over a simulated poller: seeded
                            byte chunking, chaos flags inject faults at
                            the frame boundary, same seed replays the
                            --trace-out JSONL byte for byte
    Output is one JSON object: `stats` (protocol outcome, identical
    across backends for a given --seed) and `transport` (syscalls,
    timing — backend-specific). Chaos flags require the sim backend.

TRACE ANALYSIS (offline, over --trace-out files):
    trace summarize     span tree, per-span durations in deterministic
                        ops, and the communication ledger: messages and
                        bytes per protocol cause with a bytes-per-update
                        column
    trace diff          first-divergence finder for the determinism
                        contract; reports the diverging seq with its
                        enclosing span path and exits non-zero

CSV INPUT (monitor): header-free rows `round,node,x1,...,xd`;
rounds must be non-decreasing, nodes in 0..N.

EXAMPLES:
    automon simulate --function kld --epsilon 0.05 --nodes 12 --rounds 800
    automon simulate --function quadratic --baseline periodic:10 \\
                     --baseline centralization
    automon monitor --function inner-product --dim 4 --nodes 3 \\
                    --input updates.csv --epsilon 0.1
    automon tune --function kld --nodes 12 --input prefix.csv
    automon simulate --function inner-product --rounds 200 \\
                     --chaos-seed 7 --drop-rate 0.1 --crash-node 2:50:120
    automon simulate --function variance --nodes 1000 --rounds 300 \\
                     --fleet --shards 32 --crash-leaf 3:100"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(dispatch(&sv(&["help"])).unwrap().contains("USAGE"));
        assert!(dispatch(&[]).unwrap().contains("USAGE"));
        let err = dispatch(&sv(&["frobnicate"])).unwrap_err();
        assert!(err.to_string().contains("unknown subcommand"));
    }

    #[test]
    fn simulate_inner_product_end_to_end() {
        let out = dispatch(&sv(&[
            "simulate",
            "--function",
            "inner-product",
            "--dim",
            "4",
            "--nodes",
            "3",
            "--rounds",
            "120",
            "--epsilon",
            "0.2",
            "--baseline",
            "centralization",
            "--baseline",
            "periodic:10",
        ]))
        .unwrap();
        assert!(out.contains("AutoMon"), "{out}");
        assert!(out.contains("Centralization"), "{out}");
        assert!(out.contains("Periodic(10)"), "{out}");
        assert!(out.contains("max error"), "{out}");
    }

    #[test]
    fn simulate_rejects_bad_function() {
        let err = dispatch(&sv(&["simulate", "--function", "nope"])).unwrap_err();
        assert!(err.to_string().contains("unknown function"));
    }
}
