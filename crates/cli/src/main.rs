//! The `automon` command-line tool. See `automon help`.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match automon_cli::dispatch(&argv) {
        Ok(text) => println!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
