//! `automon trace` — offline analysis of the JSONL traces `--trace-out`
//! writes.
//!
//! * `summarize` renders the causal span tree, per-span-kind durations
//!   in deterministic ops, and the communication-ledger breakdown (the
//!   `comm` events): messages and bytes per protocol cause, with a
//!   bytes-per-update column when the trace carries a `run_info` event.
//! * `diff` is the determinism debugger: it finds the first sequence
//!   number where two traces diverge and reports it with the enclosing
//!   span path, then exits non-zero. Byte-identical traces exit zero.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use automon_obs::{parse_trace, span_path_at, TraceEvent};

use crate::args::{Args, CliError};

/// Entry point for the `trace` subcommand family.
pub fn run_trace(argv: &[String]) -> Result<String, CliError> {
    match argv.first().map(String::as_str) {
        Some("summarize") => summarize(&Args::parse(&argv[1..])?),
        Some("diff") => diff(&Args::parse(&argv[1..])?),
        Some(other) => Err(CliError::new(format!(
            "unknown trace command `{other}` (summarize | diff)"
        ))),
        None => Err(CliError::new(
            "usage: automon trace summarize --input FILE\n\
             \x20      automon trace diff --left FILE --right FILE",
        )),
    }
}

/// Read and parse one JSONL trace file.
fn load(path: &str) -> Result<Vec<TraceEvent>, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::new(format!("cannot read `{path}`: {e}")))?;
    parse_trace(&text).map_err(|e| CliError::new(format!("{path}: {e}")))
}

/// Per-span-name aggregate: instance count and ops durations.
#[derive(Default)]
struct SpanAgg {
    count: u64,
    total_ops: u64,
    max_ops: u64,
}

/// `automon trace summarize --input FILE`
fn summarize(args: &Args) -> Result<String, CliError> {
    let path = args.require("input")?;
    let events = load(path)?;

    // Envelope rollups.
    let rounds = events.iter().map(|e| e.round + 1).max().unwrap_or(0);
    let mut by_kind: BTreeMap<&str, u64> = BTreeMap::new();
    for ev in &events {
        *by_kind.entry(ev.kind.as_str()).or_default() += 1;
    }

    // Span reconstruction: id → (name, parent, begin ops), then tree
    // paths (parent chains) and per-name duration aggregates.
    let mut open: BTreeMap<u64, (String, u64, u64)> = BTreeMap::new();
    let mut durations: BTreeMap<String, SpanAgg> = BTreeMap::new();
    let mut tree: BTreeMap<Vec<String>, u64> = BTreeMap::new();
    for ev in &events {
        match ev.kind.as_str() {
            "span_begin" => {
                let id = ev.u64("span").unwrap_or(0);
                let parent = ev.u64("parent").unwrap_or(0);
                let name = ev.str("name").unwrap_or("?").to_string();
                let mut trail = vec![name.clone()];
                let mut at = parent;
                while at != 0 {
                    let Some((pname, pparent, _)) = open.get(&at) else { break };
                    trail.push(pname.clone());
                    at = *pparent;
                }
                trail.reverse();
                *tree.entry(trail).or_default() += 1;
                open.insert(id, (name, parent, ev.ops));
            }
            "span_end" => {
                if let Some(id) = ev.u64("span") {
                    if let Some((name, _, begin_ops)) = open.remove(&id) {
                        let d = ev.ops.saturating_sub(begin_ops);
                        let agg = durations.entry(name).or_default();
                        agg.count += 1;
                        agg.total_ops += d;
                        agg.max_ops = agg.max_ops.max(d);
                    }
                }
            }
            _ => {}
        }
    }

    // Communication ledger from the per-frame `comm` events.
    #[derive(Default)]
    struct CommAgg {
        up_msgs: u64,
        up_bytes: u64,
        down_msgs: u64,
        down_bytes: u64,
    }
    let mut comm: BTreeMap<String, CommAgg> = BTreeMap::new();
    for ev in events.iter().filter(|e| e.kind == "comm") {
        let cause = ev.str("cause").unwrap_or("?").to_string();
        let bytes = ev.u64("bytes").unwrap_or(0);
        let agg = comm.entry(cause).or_default();
        if ev.str("dir") == Some("up") {
            agg.up_msgs += 1;
            agg.up_bytes += bytes;
        } else {
            agg.down_msgs += 1;
            agg.down_bytes += bytes;
        }
    }
    let updates = events
        .iter()
        .rev()
        .find(|e| e.kind == "run_info")
        .and_then(|e| e.u64("updates"))
        .filter(|u| *u > 0);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace summary: {} events over {rounds} rounds ({path})\n",
        events.len()
    );

    let _ = writeln!(out, "events by kind:");
    for (kind, n) in &by_kind {
        let _ = writeln!(out, "  {kind:<18} {n:>8}");
    }

    if !tree.is_empty() {
        let _ = writeln!(out, "\nspan tree (count per causal path):");
        for (trail, n) in &tree {
            let depth = trail.len() - 1;
            let name = trail.last().expect("non-empty trail");
            let _ = writeln!(out, "  {:indent$}{name:<w$} {n:>8}", "", indent = 2 * depth, w = 18usize.saturating_sub(2 * depth));
        }
        let _ = writeln!(out, "\nspan durations (deterministic ops):");
        let _ = writeln!(out, "  {:<18} {:>8} {:>12} {:>10}", "span", "count", "total_ops", "max_ops");
        for (name, agg) in &durations {
            let _ = writeln!(
                out,
                "  {name:<18} {:>8} {:>12} {:>10}",
                agg.count, agg.total_ops, agg.max_ops
            );
        }
    }

    if !comm.is_empty() {
        let header = match updates {
            Some(u) => format!("\ncomm by cause (bytes/update over {u} updates):"),
            None => "\ncomm by cause:".to_string(),
        };
        let _ = writeln!(out, "{header}");
        let _ = writeln!(
            out,
            "  {:<22} {:>6} {:>10} {:>10} {:>10} {:>12}",
            "cause", "msgs", "up_bytes", "dn_bytes", "bytes", "bytes/update"
        );
        let mut t = CommAgg::default();
        for (cause, a) in &comm {
            let bytes = a.up_bytes + a.down_bytes;
            let per_update = updates
                .map(|u| format!("{:.3}", bytes as f64 / u as f64))
                .unwrap_or_else(|| "-".to_string());
            let _ = writeln!(
                out,
                "  {cause:<22} {:>6} {:>10} {:>10} {bytes:>10} {per_update:>12}",
                a.up_msgs + a.down_msgs,
                a.up_bytes,
                a.down_bytes,
            );
            t.up_msgs += a.up_msgs;
            t.up_bytes += a.up_bytes;
            t.down_msgs += a.down_msgs;
            t.down_bytes += a.down_bytes;
        }
        let total_bytes = t.up_bytes + t.down_bytes;
        let per_update = updates
            .map(|u| format!("{:.3}", total_bytes as f64 / u as f64))
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            out,
            "  {:<22} {:>6} {:>10} {:>10} {total_bytes:>10} {per_update:>12}",
            "total",
            t.up_msgs + t.down_msgs,
            t.up_bytes,
            t.down_bytes,
        );
    }
    Ok(out)
}

/// `automon trace diff --left FILE --right FILE`
fn diff(args: &Args) -> Result<String, CliError> {
    let left_path = args.require("left")?;
    let right_path = args.require("right")?;
    let left = load(left_path)?;
    let right = load(right_path)?;

    let n = left.len().min(right.len());
    for i in 0..n {
        if left[i].raw != right[i].raw {
            return Err(divergence(
                left[i].seq,
                &left,
                Some(&left[i].raw),
                Some(&right[i].raw),
                left_path,
                right_path,
            ));
        }
    }
    if left.len() != right.len() {
        let (longer, seq) = if left.len() > right.len() {
            (&left, left[n].seq)
        } else {
            (&right, right[n].seq)
        };
        return Err(divergence(
            seq,
            longer,
            left.get(n).map(|e| e.raw.as_str()),
            right.get(n).map(|e| e.raw.as_str()),
            left_path,
            right_path,
        ));
    }
    Ok(format!("traces identical: {} events", left.len()))
}

/// Render the first-divergence report as the command's error (non-zero
/// exit), with the enclosing span path from the reference trace.
fn divergence(
    seq: u64,
    reference: &[TraceEvent],
    left: Option<&str>,
    right: Option<&str>,
    left_path: &str,
    right_path: &str,
) -> CliError {
    let path = span_path_at(reference, seq);
    let span_path = if path.is_empty() {
        "(top level)".to_string()
    } else {
        path.join(" > ")
    };
    let round = reference
        .iter()
        .find(|e| e.seq == seq)
        .map(|e| e.round)
        .unwrap_or(0);
    CliError::new(format!(
        "traces diverge at seq {seq} (round {round})\n\
         span path: {span_path}\n\
         left  ({left_path}): {}\n\
         right ({right_path}): {}",
        left.unwrap_or("<trace ended>"),
        right.unwrap_or("<trace ended>"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    fn dir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join("automon_cli_trace_test");
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// Produce a real trace file by running the simulator with
    /// `--trace-out`.
    fn emit_trace(name: &str, seed: &str) -> std::path::PathBuf {
        let path = dir().join(name);
        let argv: Vec<String> = sv(&[
            "--function",
            "inner-product",
            "--rounds",
            "60",
            "--nodes",
            "3",
            "--seed",
            seed,
            "--trace-out",
            path.to_str().unwrap(),
        ]);
        crate::run::run_simulate(&Args::parse(&argv).unwrap()).unwrap();
        path
    }

    #[test]
    fn summarize_reports_spans_and_comm_causes() {
        let path = emit_trace("summ.jsonl", "1");
        let out = run_trace(&sv(&["summarize", "--input", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("trace summary:"), "{out}");
        assert!(out.contains("span tree"), "{out}");
        assert!(out.contains("violation"), "{out}");
        assert!(out.contains("handle"), "{out}");
        assert!(out.contains("comm by cause"), "{out}");
        assert!(out.contains("registration"), "{out}");
        assert!(out.contains("full_sync"), "{out}");
        assert!(out.contains("bytes/update"), "{out}");
        assert!(out.contains("total"), "{out}");
    }

    #[test]
    fn diff_accepts_identical_and_pinpoints_divergence() {
        let a = emit_trace("diff_a.jsonl", "1");
        let b = emit_trace("diff_b.jsonl", "1");
        let same = run_trace(&sv(&[
            "diff",
            "--left",
            a.to_str().unwrap(),
            "--right",
            b.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(same.contains("traces identical"), "{same}");

        let c = emit_trace("diff_c.jsonl", "2");
        let err = run_trace(&sv(&[
            "diff",
            "--left",
            a.to_str().unwrap(),
            "--right",
            c.to_str().unwrap(),
        ]))
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("diverge at seq"), "{msg}");
        assert!(msg.contains("span path:"), "{msg}");
    }

    #[test]
    fn diff_flags_truncation() {
        let a = emit_trace("trunc_a.jsonl", "1");
        let text = std::fs::read_to_string(&a).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let b = dir().join("trunc_b.jsonl");
        let mut shorter = lines[..lines.len() - 3].join("\n");
        shorter.push('\n');
        std::fs::write(&b, shorter).unwrap();
        let err = run_trace(&sv(&[
            "diff",
            "--left",
            a.to_str().unwrap(),
            "--right",
            b.to_str().unwrap(),
        ]))
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("diverge at seq"), "{msg}");
        assert!(msg.contains("<trace ended>"), "{msg}");
    }

    #[test]
    fn trace_usage_errors() {
        assert!(run_trace(&[]).is_err());
        assert!(run_trace(&sv(&["frobnicate"])).is_err());
        assert!(run_trace(&sv(&["summarize"])).is_err(), "missing --input");
        assert!(run_trace(&sv(&["summarize", "--input", "/no/such/file"])).is_err());
        assert!(run_trace(&sv(&["diff", "--left", "x"])).is_err(), "missing --right");
    }
}
