//! `automon net-smoke` — drive the monitoring protocol over a real
//! network transport and report protocol outcome + transport cost.
//!
//! Three backends behind `--net-backend`:
//!
//! * `threaded` — the blocking TCP transport (reader thread per node).
//! * `reactor`  — the epoll reactor (single event-loop thread,
//!   coalesced reads, writev batching).
//! * `sim`      — `Reactor<SimPoller>`: no sockets, seeded byte
//!   chunking, optional chaos at the frame boundary, byte-identical
//!   replay (`--trace-out` dumps the JSONL event trace).
//!
//! Output is one JSON object split into a `stats` block (protocol
//! outcome — identical across backends for the same workload seed; CI
//! diffs it between `threaded` and `reactor`) and a `transport` block
//! (syscalls, timing — backend-specific by design).
//!
//! The socket drivers serialize rounds node-by-node and handle
//! same-sync replies in node-id order, so the protocol's decision
//! sequence depends only on the workload — never on socket scheduling.

use std::collections::HashSet;
use std::net::{SocketAddr, TcpListener};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use automon_chaos::FaultPlan;
use automon_core::{Coordinator, MonitorConfig, MonitoredFunction, Node, NodeMessage, Outbound};
use automon_linalg::vector;
use automon_net::reactor::ReactorCoordinatorTransport;
use automon_net::tcp::{self, TcpCoordinatorTransport, TcpNodeTransport};
use automon_net::SyscallStats;
use automon_sim::{NetSimulation, Workload};
use serde::{Serialize, Value};

use crate::args::{Args, CliError};
use crate::run::build_function;

/// Per-resolution deadline on the socket paths: a wedged sync is a bug,
/// not something to wait out.
const RESOLVE_DEADLINE: Duration = Duration::from_secs(20);

/// Deterministic drifting workload shared by every backend: per-node
/// phase offsets and a slow upward drift — enough motion to exercise
/// violations, lazy syncs, and full syncs. Pure function of
/// `(seed, t, node, dim)`.
fn sample(seed: u64, t: usize, node: usize, dim: usize) -> Vec<f64> {
    let phase = (seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(17)
        .wrapping_add(node as u64)
        % 997) as f64
        / 997.0;
    (0..dim)
        .map(|d| {
            let drift = t as f64 * 0.07;
            let wiggle =
                ((t as f64 + node as f64 * 1.3 + d as f64 * 0.7) * 0.9
                    + phase * std::f64::consts::TAU)
                    .sin()
                    * 0.35;
            drift + wiggle + node as f64 * 0.05
        })
        .collect()
}

fn dense_workload(seed: u64, n: usize, rounds: usize, dim: usize) -> Workload {
    let series: Vec<Vec<Vec<f64>>> = (0..n)
        .map(|i| (0..rounds).map(|t| sample(seed, t, i, dim)).collect())
        .collect();
    Workload::from_dense(&series)
}

/// One abstraction over the two socket-backed coordinator transports so
/// the lockstep driver below is written once.
enum CoordTransport {
    Threaded(TcpCoordinatorTransport),
    Reactor(ReactorCoordinatorTransport),
}

impl CoordTransport {
    fn recv_timeout(&self, d: Duration) -> Option<NodeMessage> {
        match self {
            CoordTransport::Threaded(t) => t.recv_timeout(d),
            CoordTransport::Reactor(t) => t.recv_timeout(d),
        }
    }

    fn send(&self, out: &Outbound) -> Result<(), automon_net::tcp::TcpError> {
        match self {
            CoordTransport::Threaded(t) => t.send(out),
            CoordTransport::Reactor(t) => t.send(out),
        }
    }

    fn syscalls(&self) -> SyscallStats {
        match self {
            // The threaded transport counts process-wide; the driver owns
            // the process, so the totals are this run's.
            CoordTransport::Threaded(_) => tcp::threaded_syscalls(),
            CoordTransport::Reactor(t) => t.syscall_stats(),
        }
    }
}

enum Cmd {
    Update(Vec<f64>),
    /// Drain the socket until `target` coordinator frames have been
    /// consumed since connect, then ack — the causal barrier that makes
    /// the next update see every constraint install already sent.
    Sync(usize),
    Shutdown,
}

/// Run `net-smoke` per the parsed arguments.
pub fn run_net_smoke(args: &Args) -> Result<String, CliError> {
    let backend = args.get("net-backend").unwrap_or("reactor");
    let n: usize = args.num("nodes", 4usize)?;
    let rounds: usize = args.num("rounds", 60usize)?;
    let dim: usize = args.num("dim", 2usize)?;
    let seed: u64 = args.num("seed", 1u64)?;
    let epsilon: f64 = args.num("epsilon", 0.4f64)?;
    let fname = args.get("function").unwrap_or("inner-product");
    if n == 0 || rounds == 0 {
        return Err(CliError::new("--nodes and --rounds must be positive"));
    }
    let f = build_function(fname, dim)?;
    let cfg = MonitorConfig::builder(epsilon).build();

    let chaotic = args.get("chaos-seed").is_some()
        || ["drop-rate", "duplicate-rate", "reorder-rate", "delay-rate"]
            .iter()
            .any(|k| args.get(k).is_some());

    match backend {
        "sim" => run_sim_backend(args, f, cfg, seed, n, rounds, dim),
        "threaded" | "reactor" => {
            if chaotic {
                return Err(CliError::new(
                    "chaos flags need --net-backend sim (faults inject at the \
                     simulated frame boundary, not on real sockets)",
                ));
            }
            run_socket_backend(backend, f, cfg, seed, n, rounds, dim)
        }
        other => Err(CliError::new(format!(
            "unknown --net-backend `{other}` (threaded | reactor | sim)"
        ))),
    }
}

fn run_sim_backend(
    args: &Args,
    f: Arc<dyn MonitoredFunction>,
    cfg: MonitorConfig,
    seed: u64,
    n: usize,
    rounds: usize,
    dim: usize,
) -> Result<String, CliError> {
    let mut plan = FaultPlan::seeded(args.num("chaos-seed", seed)?);
    plan = plan
        .with_drop_rate(args.num("drop-rate", 0.0f64)?)
        .with_duplicate_rate(args.num("duplicate-rate", 0.0f64)?)
        .with_reorder_rate(args.num("reorder-rate", 0.0f64)?);
    let delay: f64 = args.num("delay-rate", 0.0f64)?;
    if delay > 0.0 {
        plan = plan.with_delay(delay, args.num("max-delay-rounds", 3usize)?);
    }

    let w = dense_workload(seed, n, rounds, dim);
    let report = NetSimulation::new(f, cfg)
        .with_plan(plan)
        .with_net_seed(seed)
        .run(&w);

    if let Some(path) = args.get("trace-out") {
        std::fs::write(path, &report.trace)
            .map_err(|e| CliError::new(format!("writing {path}: {e}")))?;
    }
    if !report.quiesced {
        return Err(CliError::new(
            "protocol failed to quiesce inside the recovery budget",
        ));
    }

    let out = obj(vec![
        ("stats", report.stats.to_value()),
        (
            "transport",
            obj(vec![
                ("backend", Value::Str("sim".to_string())),
                ("syscalls", syscalls_json(&report.syscalls)),
                ("frames_in", Value::UInt(report.traffic.frames_in)),
                ("frames_out", Value::UInt(report.traffic.frames_out)),
                ("bytes_in", Value::UInt(report.traffic.bytes_in)),
                ("bytes_out", Value::UInt(report.traffic.bytes_out)),
                ("injected_faults", Value::UInt(report.faults.injected())),
                // No elapsed_ms: the sim backend's output is part of the
                // determinism contract — wall time would break
                // byte-identity between same-seed runs.
            ]),
        ),
    ]);
    serde_json::to_string(&out).map_err(|e| CliError::new(format!("JSON encoding failed: {e}")))
}

fn run_socket_backend(
    backend: &str,
    f: Arc<dyn MonitoredFunction>,
    cfg: MonitorConfig,
    seed: u64,
    n: usize,
    rounds: usize,
    dim: usize,
) -> Result<String, CliError> {
    // Pick a free port, then bind the coordinator transport while the
    // node workers dial it (their connect path retries with backoff).
    let probe = TcpListener::bind("127.0.0.1:0")
        .map_err(|e| CliError::new(format!("binding probe socket: {e}")))?;
    let addr: SocketAddr = probe
        .local_addr()
        .map_err(|e| CliError::new(format!("probe addr: {e}")))?;
    drop(probe);

    let binder = {
        let backend = backend.to_string();
        std::thread::spawn(move || -> Result<CoordTransport, String> {
            match backend.as_str() {
                "threaded" => TcpCoordinatorTransport::bind(addr, n)
                    .map(|(t, _)| CoordTransport::Threaded(t))
                    .map_err(|e| e.to_string()),
                _ => ReactorCoordinatorTransport::bind(addr, n)
                    .map(|(t, _)| CoordTransport::Reactor(t))
                    .map_err(|e| e.to_string()),
            }
        })
    };

    // Node workers: apply pushed updates, answer pulls, ack each round.
    let mut cmd_txs = Vec::with_capacity(n);
    let (ack_tx, ack_rx) = mpsc::channel::<(usize, bool)>();
    let mut workers = Vec::with_capacity(n);
    for i in 0..n {
        let (tx, rx) = mpsc::channel::<Cmd>();
        cmd_txs.push(tx);
        let ack = ack_tx.clone();
        let f = f.clone();
        workers.push(std::thread::spawn(move || {
            let mut tp = match TcpNodeTransport::connect(addr, i) {
                Ok(tp) => tp,
                Err(e) => {
                    eprintln!("node {i}: connect failed: {e}");
                    return;
                }
            };
            let mut node = Node::new(i, f);
            let mut seen = 0usize;
            loop {
                match rx.try_recv() {
                    Ok(Cmd::Update(x)) => {
                        let report = node.update_data(x);
                        let violated = report.is_some();
                        if let Some(m) = report {
                            let _ = tp.send(&m);
                        }
                        let _ = ack.send((i, violated));
                    }
                    Ok(Cmd::Sync(target)) => {
                        while seen < target {
                            if let Ok(Some(cm)) = tp.try_recv() {
                                seen += 1;
                                if let Some(reply) = node.handle(cm) {
                                    let _ = tp.send(&reply);
                                }
                            }
                        }
                        let _ = ack.send((i, false));
                    }
                    Ok(Cmd::Shutdown) | Err(mpsc::TryRecvError::Disconnected) => return,
                    Err(mpsc::TryRecvError::Empty) => {}
                }
                // try_recv polls with a short read timeout, so this loop
                // alternates between command and socket work.
                if let Ok(Some(cm)) = tp.try_recv() {
                    seen += 1;
                    if let Some(reply) = node.handle(cm) {
                        let _ = tp.send(&reply);
                    }
                }
            }
        }));
    }
    drop(ack_tx);

    let tp = binder
        .join()
        .map_err(|_| CliError::new("coordinator bind thread panicked"))?
        .map_err(|e| CliError::new(format!("binding {backend} transport: {e}")))?;

    let mut coord = Coordinator::new(f.clone(), n, cfg);
    let mut messages = 0usize;
    let mut current: Vec<Option<Vec<f64>>> = vec![None; n];
    let mut errors = Vec::with_capacity(rounds);
    let started = Instant::now();
    let mut reports = 0usize;
    let mut sent_to = vec![0usize; n];

    let result: Result<(), CliError> = (|| {
        for t in 0..rounds {
            for i in 0..n {
                // Barrier: node i must have consumed every frame the
                // coordinator has sent it before producing its next
                // update, or the update races the constraint install and
                // the protocol's decision sequence depends on socket
                // timing instead of the workload.
                cmd_txs[i]
                    .send(Cmd::Sync(sent_to[i]))
                    .map_err(|_| CliError::new(format!("node {i} worker died")))?;
                ack_rx
                    .recv_timeout(RESOLVE_DEADLINE)
                    .map_err(|_| CliError::new(format!("node {i}: no sync ack")))?;
                let x = sample(seed, t, i, dim);
                current[i] = Some(x.clone());
                cmd_txs[i]
                    .send(Cmd::Update(x))
                    .map_err(|_| CliError::new(format!("node {i} worker died")))?;
                let (_, violated) = ack_rx
                    .recv_timeout(RESOLVE_DEADLINE)
                    .map_err(|_| CliError::new(format!("node {i}: no round ack")))?;
                if violated {
                    reports += 1;
                    resolve(&tp, &mut coord, &mut messages, &mut sent_to)?;
                }
            }
            if current.iter().all(Option::is_some) {
                if let Some(est) = coord.current_value() {
                    let xs: Vec<Vec<f64>> =
                        current.iter().map(|x| x.clone().expect("present")).collect();
                    let truth = f.eval(&vector::mean(&xs).expect("n > 0"));
                    errors.push((est - truth).abs());
                }
            }
        }
        Ok(())
    })();

    let elapsed = started.elapsed();
    for tx in &cmd_txs {
        let _ = tx.send(Cmd::Shutdown);
    }
    for w in workers {
        let _ = w.join();
    }
    result?;

    let st = coord.stats();
    let syscalls = tp.syscalls();
    let max_error = errors.iter().cloned().fold(0.0f64, f64::max);
    let mean_error = if errors.is_empty() {
        0.0
    } else {
        errors.iter().sum::<f64>() / errors.len() as f64
    };
    let out = obj(vec![
        (
            "stats",
            obj(vec![
                ("nodes", Value::UInt(n as u64)),
                ("rounds", Value::UInt(rounds as u64)),
                ("messages", Value::UInt(messages as u64)),
                ("reports", Value::UInt(reports as u64)),
                (
                    "neighborhood_violations",
                    Value::UInt(st.neighborhood_violations as u64),
                ),
                (
                    "safezone_violations",
                    Value::UInt(st.safezone_violations as u64),
                ),
                ("full_syncs", Value::UInt(st.full_syncs as u64)),
                ("lazy_syncs", Value::UInt(st.lazy_syncs as u64)),
                ("max_error", Value::Str(format!("{max_error:.12e}"))),
                ("mean_error", Value::Str(format!("{mean_error:.12e}"))),
            ]),
        ),
        (
            "transport",
            obj(vec![
                ("backend", Value::Str(backend.to_string())),
                ("syscalls", syscalls_json(&syscalls)),
                (
                    "syscalls_per_report",
                    Value::F64(if reports > 0 {
                        syscalls.total() as f64 / reports as f64
                    } else {
                        0.0
                    }),
                ),
                ("elapsed_ms", Value::UInt(elapsed.as_millis() as u64)),
            ]),
        ),
    ]);
    serde_json::to_string(&out).map_err(|e| CliError::new(format!("JSON encoding failed: {e}")))
}

/// Pump the transport until the coordinator's sync resolves, handling
/// same-sync replies in node-id order so the decision sequence is
/// independent of socket arrival order.
fn resolve(
    tp: &CoordTransport,
    coord: &mut Coordinator,
    messages: &mut usize,
    sent_to: &mut [usize],
) -> Result<(), CliError> {
    let deadline = Instant::now() + RESOLVE_DEADLINE;
    // First frame: the violation report itself.
    loop {
        if Instant::now() > deadline {
            return Err(CliError::new("timed out waiting for a violation report"));
        }
        let Some(m) = tp.recv_timeout(Duration::from_millis(100)) else {
            continue;
        };
        *messages += 1;
        for out in coord.handle(m) {
            *messages += 1;
            sent_to[out.to] += 1;
            tp.send(&out)
                .map_err(|e| CliError::new(format!("send failed: {e}")))?;
        }
        break;
    }
    while coord.is_resolving() {
        if Instant::now() > deadline {
            return Err(CliError::new("sync failed to resolve before deadline"));
        }
        let expect: HashSet<usize> = coord
            .outstanding_requests()
            .iter()
            .map(|o| o.to)
            .collect();
        let mut buf: Vec<NodeMessage> = Vec::with_capacity(expect.len());
        while buf.len() < expect.len() {
            if Instant::now() > deadline {
                return Err(CliError::new("sync replies missing before deadline"));
            }
            let Some(m) = tp.recv_timeout(Duration::from_millis(100)) else {
                continue;
            };
            *messages += 1;
            if expect.contains(&m.sender()) {
                buf.push(m);
            } else {
                // Not part of this sync (e.g. a straggler): hand it to
                // the coordinator immediately.
                for out in coord.handle(m) {
                    *messages += 1;
                    sent_to[out.to] += 1;
                    tp.send(&out)
                        .map_err(|e| CliError::new(format!("send failed: {e}")))?;
                }
            }
        }
        buf.sort_by_key(NodeMessage::sender);
        for m in buf {
            for out in coord.handle(m) {
                *messages += 1;
                sent_to[out.to] += 1;
                tp.send(&out)
                    .map_err(|e| CliError::new(format!("send failed: {e}")))?;
            }
        }
    }
    Ok(())
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn syscalls_json(s: &SyscallStats) -> Value {
    obj(vec![
        ("waits", Value::UInt(s.waits)),
        ("reads", Value::UInt(s.reads)),
        ("writevs", Value::UInt(s.writevs)),
        ("accepts", Value::UInt(s.accepts)),
        ("total", Value::UInt(s.total())),
    ])
}
