//! Minimal `--key value` argument parsing.

use std::collections::BTreeMap;
use std::fmt;

/// A CLI failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    msg: String,
}

impl CliError {
    /// Wrap a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for CliError {}

/// Parsed `--key value` arguments; repeated keys accumulate. A flag
/// followed by another `--flag` (or by nothing) is boolean and stores
/// `"true"`.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, Vec<String>>,
}

impl Args {
    /// Parse an argument list of the form `--key value --key value …`.
    /// `--key` with no following value is a boolean flag set to `true`;
    /// negative numbers (`-0.5`) still parse as values.
    pub fn parse(argv: &[String]) -> Result<Self, CliError> {
        let mut values: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut it = argv.iter().peekable();
        while let Some(token) = it.next() {
            let key = token
                .strip_prefix("--")
                .ok_or_else(|| CliError::new(format!("expected `--flag`, got `{token}`")))?;
            let value = match it.peek() {
                Some(next) if !next.starts_with("--") => {
                    it.next().expect("peeked").clone()
                }
                _ => "true".to_string(),
            };
            values.entry(key.to_string()).or_default().push(value);
        }
        Ok(Self { values })
    }

    /// Boolean flag: present (or explicitly anything but `false`/`0`).
    pub fn flag(&self, key: &str) -> bool {
        self.get(key).is_some_and(|v| v != "false" && v != "0")
    }

    /// Last occurrence of a flag, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values
            .get(key)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    /// All occurrences of a repeatable flag.
    pub fn get_all(&self, key: &str) -> &[String] {
        self.values.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key)
            .ok_or_else(|| CliError::new(format!("missing required flag `--{key}`")))
    }

    /// Optional numeric flag with a default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError::new(format!("flag `--{key}`: invalid value `{raw}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_repeats() {
        let a = Args::parse(&sv(&["--x", "1", "--y", "two", "--x", "3"])).unwrap();
        assert_eq!(a.get("x"), Some("3"));
        assert_eq!(a.get_all("x"), &["1".to_string(), "3".to_string()]);
        assert_eq!(a.get("y"), Some("two"));
        assert_eq!(a.get("z"), None);
    }

    #[test]
    fn numeric_parsing_with_defaults() {
        let a = Args::parse(&sv(&["--eps", "0.25"])).unwrap();
        assert_eq!(a.num("eps", 1.0).unwrap(), 0.25);
        assert_eq!(a.num("missing", 7usize).unwrap(), 7);
        assert!(a.num::<usize>("eps", 0).is_err());
    }

    #[test]
    fn malformed_input_errors() {
        assert!(Args::parse(&sv(&["naked"])).is_err());
        let a = Args::parse(&[]).unwrap();
        assert!(a.require("anything").is_err());
    }

    #[test]
    fn boolean_flags() {
        let a = Args::parse(&sv(&["--json", "--eps", "0.5", "--quiet"])).unwrap();
        assert!(a.flag("json"));
        assert!(a.flag("quiet"));
        assert!(!a.flag("missing"));
        assert_eq!(a.num("eps", 0.0).unwrap(), 0.5);
        let b = Args::parse(&sv(&["--json", "false", "--neg", "-0.5"])).unwrap();
        assert!(!b.flag("json"));
        assert_eq!(b.num("neg", 0.0).unwrap(), -0.5);
    }
}
