//! Subcommand implementations.

use std::collections::VecDeque;
use std::sync::Arc;

use automon_autodiff::AutoDiffFn;
use automon_core::{
    CachePolicy, Coordinator, DecompCacheConfig, MonitorConfig, MonitoredFunction, Node,
    Parallelism, SpectralBackend,
};
use automon_data::synthetic::{InnerProductDataset, QuadraticDataset, RozenbrockDataset};
use automon_data::windowed_mean_series;
use automon_functions::{train_mlp_d, InnerProduct, KlDivergence, QuadraticForm, Rozenbrock, Variance};
use automon_chaos::FaultPlan;
use automon_fleet::{FleetConfig, FleetFaultPlan, LeafCrash, NodeCrash};
use automon_obs::{MetricsServer, Telemetry};
use automon_sim::{
    run_centralization, run_periodic, ChaosSimulation, FleetSimulation, Simulation, Workload,
};
use automon_store::{DynDisk, FileDisk, MemDisk};
use serde::{Serialize, Value};

use crate::args::{Args, CliError};
use crate::csvio::{parse_csv_updates, render_estimates};

/// Build a built-in monitored function by name.
pub fn build_function(name: &str, dim: usize) -> Result<Arc<dyn MonitoredFunction>, CliError> {
    Ok(match name {
        "inner-product" => Arc::new(AutoDiffFn::new(InnerProduct::new(dim))),
        "quadratic" => Arc::new(AutoDiffFn::new(QuadraticForm::random(dim, 7))),
        "kld" => Arc::new(AutoDiffFn::new(KlDivergence::new(dim, 1.0 / 2400.0))),
        "variance" => Arc::new(AutoDiffFn::new(Variance)),
        "rozenbrock" => Arc::new(AutoDiffFn::new(Rozenbrock)),
        "mlp" => Arc::new(AutoDiffFn::new(train_mlp_d(dim, 7))),
        other => {
            return Err(CliError::new(format!(
                "unknown function `{other}` (see `automon help`)"
            )))
        }
    })
}

/// Parse `--parallelism` (0 = auto-size to the machine, 1 = the
/// sequential reference path, n ≥ 2 = that many workers).
fn parse_parallelism(args: &Args) -> Result<Parallelism, CliError> {
    Ok(Parallelism::from(args.num("parallelism", 0usize)?))
}

/// Parse `--spectral-backend` (`ql` is the default two-tier kernel,
/// `jacobi` the legacy escape hatch).
fn parse_spectral_backend(args: &Args) -> Result<SpectralBackend, CliError> {
    match args.get("spectral-backend") {
        None | Some("ql") => Ok(SpectralBackend::Ql),
        Some("jacobi") => Ok(SpectralBackend::Jacobi),
        Some(other) => Err(CliError::new(format!(
            "unknown spectral backend `{other}` (ql | jacobi)"
        ))),
    }
}

/// Parse `--decomp-cache <lru-k|slru|arc>` plus its companions
/// `--decomp-cache-capacity <n>` and `--decomp-cache-warm` (warm-start
/// Lanczos from cached Ritz vectors; trades bit-parity with cache-off
/// runs for fewer iterations). Absent flag ⇒ cache off (the default).
fn parse_decomp_cache(args: &Args) -> Result<Option<DecompCacheConfig>, CliError> {
    let Some(name) = args.get("decomp-cache") else {
        if args.get("decomp-cache-capacity").is_some() || args.flag("decomp-cache-warm") {
            return Err(CliError::new(
                "--decomp-cache-capacity/--decomp-cache-warm require --decomp-cache",
            ));
        }
        return Ok(None);
    };
    let policy = CachePolicy::parse(name).ok_or_else(|| {
        CliError::new(format!(
            "unknown decomposition-cache policy `{name}` (lru-k | slru | arc)"
        ))
    })?;
    let mut cache = DecompCacheConfig::with_policy(policy);
    cache.capacity = args.num("decomp-cache-capacity", cache.capacity)?;
    if cache.capacity == 0 {
        return Err(CliError::new("--decomp-cache-capacity must be ≥ 1"));
    }
    cache.warm_start = args.flag("decomp-cache-warm");
    Ok(Some(cache))
}

/// Default dimension per function when `--dim` is omitted.
fn default_dim(name: &str) -> usize {
    match name {
        "variance" | "rozenbrock" => 2,
        "kld" => 20,
        _ => 4,
    }
}

/// Build the built-in workload matching a function name.
fn build_workload(
    name: &str,
    nodes: usize,
    rounds: usize,
    dim: usize,
    seed: u64,
) -> Result<Workload, CliError> {
    let window = 20;
    let raw = match name {
        "inner-product" => InnerProductDataset::generate(nodes, rounds + window - 1, dim, seed),
        "variance" => {
            // Augmented vectors [x, x²] from scalar samples (§6 rewriting).
            let scalars = QuadraticDataset::generate(nodes, rounds + window - 1, 1, seed);
            scalars
                .into_iter()
                .map(|s| {
                    s.into_iter()
                        .map(|v| vec![v[0], v[0] * v[0]])
                        .collect()
                })
                .collect()
        }
        "quadratic" | "mlp" => QuadraticDataset::generate(nodes, rounds + window - 1, dim, seed),
        "rozenbrock" => RozenbrockDataset::generate(nodes, rounds + window - 1, seed),
        "kld" => {
            let streams = automon_data::air_quality::generate(&automon_data::air_quality::AirQualityParams {
                sites: nodes,
                hours: rounds + 199,
                seed,
            });
            return Ok(Workload::from_dense(&automon_data::air_quality::kld_series(
                &streams,
                200,
                dim / 2,
            )));
        }
        other => return Err(CliError::new(format!("unknown function `{other}`"))),
    };
    Ok(Workload::from_dense(&windowed_mean_series(&raw, window)))
}

/// Parse the chaos flags into a [`FaultPlan`], or `None` when no chaos
/// flag was given. Crash specs are `node:at[:restart]`, partition specs
/// `n1[,n2,…]:from:until` (rounds; `until` exclusive).
fn parse_chaos_plan(args: &Args, nodes: usize) -> Result<Option<FaultPlan>, CliError> {
    let requested = args.get("chaos-seed").is_some()
        || args.get("drop-rate").is_some()
        || !args.get_all("crash-node").is_empty()
        || !args.get_all("crash-coordinator").is_empty()
        || !args.get_all("partition").is_empty();
    if !requested {
        return Ok(None);
    }
    let drop_rate = args.num("drop-rate", 0.0f64)?;
    if !(0.0..=1.0).contains(&drop_rate) {
        return Err(CliError::new("--drop-rate must be in [0, 1]"));
    }
    let mut plan = FaultPlan::seeded(args.num("chaos-seed", 1u64)?).with_drop_rate(drop_rate);
    let node_id = |raw: &str, spec: &str| -> Result<usize, CliError> {
        let id: usize = raw
            .parse()
            .map_err(|_| CliError::new(format!("bad node id `{raw}` in `{spec}`")))?;
        if id >= nodes {
            return Err(CliError::new(format!(
                "node {id} in `{spec}` out of range (nodes = {nodes})"
            )));
        }
        Ok(id)
    };
    for spec in args.get_all("crash-node") {
        let parts: Vec<&str> = spec.split(':').collect();
        if !(2..=3).contains(&parts.len()) {
            return Err(CliError::new(format!(
                "--crash-node wants `node:at[:restart]`, got `{spec}`"
            )));
        }
        let node = node_id(parts[0], spec)?;
        let at: usize = parts[1]
            .parse()
            .map_err(|_| CliError::new(format!("bad crash round in `{spec}`")))?;
        let restart = match parts.get(2) {
            None => None,
            Some(raw) => Some(
                raw.parse::<usize>()
                    .map_err(|_| CliError::new(format!("bad restart round in `{spec}`")))?,
            ),
        };
        if restart.is_some_and(|r| r <= at) {
            return Err(CliError::new(format!(
                "restart must come after the crash in `{spec}`"
            )));
        }
        plan = plan.with_crash(node, at, restart);
    }
    for spec in args.get_all("crash-coordinator") {
        let round: usize = spec.parse().map_err(|_| {
            CliError::new(format!("--crash-coordinator wants a round number, got `{spec}`"))
        })?;
        plan = plan.with_coordinator_crash(round);
    }
    for spec in args.get_all("partition") {
        let parts: Vec<&str> = spec.split(':').collect();
        let [ids, from, until] = parts.as_slice() else {
            return Err(CliError::new(format!(
                "--partition wants `n1[,n2,…]:from:until`, got `{spec}`"
            )));
        };
        let members = ids
            .split(',')
            .map(|raw| node_id(raw, spec))
            .collect::<Result<Vec<_>, _>>()?;
        let from: usize = from
            .parse()
            .map_err(|_| CliError::new(format!("bad `from` round in `{spec}`")))?;
        let until: usize = until
            .parse()
            .map_err(|_| CliError::new(format!("bad `until` round in `{spec}`")))?;
        if until <= from {
            return Err(CliError::new(format!(
                "partition `{spec}` must have until > from"
            )));
        }
        plan = plan.with_partition(members, from, until);
    }
    Ok(Some(plan))
}

/// Parse the fleet flags into a [`FleetConfig`] plus its deterministic
/// membership-fault schedule, or `None` when `--fleet` was not given.
///
/// Flag hygiene is strict both ways: fleet-only flags without `--fleet`
/// are rejected, and flat-runner flags that have no meaning in a fleet
/// run (frame-level chaos, coordinator durability, baselines) are
/// rejected with `--fleet` instead of being silently ignored.
fn parse_fleet(
    args: &Args,
    streams: usize,
) -> Result<Option<(FleetConfig, FleetFaultPlan)>, CliError> {
    if !args.flag("fleet") {
        for key in ["shards", "leaf-epsilon-frac", "crash-leaf"] {
            if args.get(key).is_some() {
                return Err(CliError::new(format!("--{key} requires --fleet")));
            }
        }
        return Ok(None);
    }
    for key in [
        "chaos-seed",
        "drop-rate",
        "partition",
        "crash-coordinator",
        "wal-dir",
        "snapshot-every",
        "baseline",
    ] {
        if args.get(key).is_some() {
            return Err(CliError::new(format!(
                "--{key} cannot be combined with --fleet (fleet faults are the \
                 deterministic --crash-node/--crash-leaf schedules)"
            )));
        }
    }
    let shards = args.num("shards", 8usize)?;
    if shards == 0 {
        return Err(CliError::new("--shards must be ≥ 1"));
    }
    if streams < shards {
        return Err(CliError::new(format!(
            "--fleet needs at least one stream per shard ({streams} nodes < {shards} shards)"
        )));
    }
    let frac = args.num("leaf-epsilon-frac", 0.5f64)?;
    if !(frac > 0.0 && frac < 1.0) {
        return Err(CliError::new("--leaf-epsilon-frac must be in (0, 1)"));
    }
    let mut fleet_cfg = FleetConfig::new(shards);
    fleet_cfg.leaf_epsilon_frac = frac;

    let mut plan = FleetFaultPlan::default();
    for spec in args.get_all("crash-node") {
        let parts: Vec<&str> = spec.split(':').collect();
        if !(2..=3).contains(&parts.len()) {
            return Err(CliError::new(format!(
                "--crash-node wants `node:at[:restart]`, got `{spec}`"
            )));
        }
        let stream: usize = parts[0]
            .parse()
            .map_err(|_| CliError::new(format!("bad node id in `{spec}`")))?;
        if stream >= streams {
            return Err(CliError::new(format!(
                "node {stream} in `{spec}` out of range (nodes = {streams})"
            )));
        }
        let at: u64 = parts[1]
            .parse()
            .map_err(|_| CliError::new(format!("bad crash round in `{spec}`")))?;
        let restart = match parts.get(2) {
            None => None,
            Some(raw) => Some(
                raw.parse::<u64>()
                    .map_err(|_| CliError::new(format!("bad restart round in `{spec}`")))?,
            ),
        };
        if restart.is_some_and(|r| r <= at) {
            return Err(CliError::new(format!(
                "restart must come after the crash in `{spec}`"
            )));
        }
        plan.node_crashes.push(NodeCrash { stream, at, restart });
    }
    for spec in args.get_all("crash-leaf") {
        let [leaf, at] = spec.split(':').collect::<Vec<_>>()[..] else {
            return Err(CliError::new(format!(
                "--crash-leaf wants `leaf:at`, got `{spec}`"
            )));
        };
        let leaf: usize = leaf
            .parse()
            .map_err(|_| CliError::new(format!("bad leaf id in `{spec}`")))?;
        if leaf >= shards {
            return Err(CliError::new(format!(
                "leaf {leaf} in `{spec}` out of range (shards = {shards})"
            )));
        }
        let at: u64 = at
            .parse()
            .map_err(|_| CliError::new(format!("bad crash round in `{spec}`")))?;
        plan.leaf_crashes.push(LeafCrash { leaf, at });
    }
    Ok(Some((fleet_cfg, plan)))
}

/// Outcome summary of a monitor/simulate run.
#[derive(Debug, Clone)]
pub struct MonitorOutcome {
    /// Protocol messages exchanged.
    pub messages: usize,
    /// Maximum observed `|estimate - truth|`.
    pub max_error: f64,
}

/// The observability sinks a run was asked for: an enabled [`Telemetry`]
/// handle when any of `--metrics-out`, `--trace-out`, `--serve-metrics`
/// is present, plus the live HTTP responder and the streaming trace
/// writer.
struct ObsSinks {
    telemetry: Telemetry,
    server: Option<MetricsServer>,
    trace: Option<TraceStream>,
}

/// Streaming `--trace-out` writer. A background thread drains the
/// tracer's buffer to the file while the run executes, so trace memory
/// stays bounded on long runs; drains preserve event order, and the
/// concatenation of all drains is byte-identical to a run-end dump.
struct TraceStream {
    path: String,
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    writer: std::thread::JoinHandle<std::io::Result<()>>,
}

impl TraceStream {
    fn start(path: &str, telemetry: Telemetry) -> Result<Self, CliError> {
        use std::sync::atomic::{AtomicBool, Ordering};
        let file = std::fs::File::create(path)
            .map_err(|e| CliError::new(format!("cannot write `{path}`: {e}")))?;
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let stop_seen = stop.clone();
        let writer = std::thread::spawn(move || {
            use std::io::Write;
            let mut w = std::io::BufWriter::new(file);
            loop {
                // Read the flag before draining: once `finish` sets it,
                // the run is over, so this drain is the final, complete
                // one.
                let done = stop_seen.load(Ordering::Acquire);
                telemetry.drain_trace_to(&mut w)?;
                if done {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            w.flush()
        });
        Ok(Self {
            path: path.to_string(),
            stop,
            writer,
        })
    }

    fn finish(self) -> Result<String, CliError> {
        self.stop.store(true, std::sync::atomic::Ordering::Release);
        match self.writer.join() {
            Ok(Ok(())) => Ok(format!("trace written to {}", self.path)),
            Ok(Err(e)) => Err(CliError::new(format!(
                "cannot write `{}`: {e}",
                self.path
            ))),
            Err(_) => Err(CliError::new("trace writer thread panicked")),
        }
    }
}

impl ObsSinks {
    fn from_args(args: &Args) -> Result<Self, CliError> {
        let wanted = args.get("metrics-out").is_some()
            || args.get("trace-out").is_some()
            || args.get("serve-metrics").is_some();
        let telemetry = if wanted {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        };
        let server = match args.get("serve-metrics") {
            Some(addr) => Some(MetricsServer::bind(addr, telemetry.clone()).map_err(|e| {
                CliError::new(format!("cannot serve metrics on `{addr}`: {e}"))
            })?),
            None => None,
        };
        let trace = match args.get("trace-out") {
            Some(path) => Some(TraceStream::start(path, telemetry.clone())?),
            None => None,
        };
        Ok(Self {
            telemetry,
            server,
            trace,
        })
    }

    /// Flush the file sinks and stop the HTTP responder. Returns human
    /// notes (one per sink) for the text report; `--json` mode discards
    /// them to keep stdout pure JSON.
    fn finish(self, args: &Args) -> Result<Vec<String>, CliError> {
        let mut notes = Vec::new();
        if let Some(path) = args.get("metrics-out") {
            self.telemetry
                .write_metrics(std::path::Path::new(path))
                .map_err(|e| CliError::new(format!("cannot write `{path}`: {e}")))?;
            notes.push(format!("metrics written to {path}"));
        }
        if let Some(stream) = self.trace {
            notes.push(stream.finish()?);
        }
        if let Some(server) = self.server {
            notes.push(format!(
                "metrics served at http://{}/metrics for the duration of the run",
                server.local_addr()
            ));
            server.shutdown();
        }
        Ok(notes)
    }
}

/// Render run statistics as a compact JSON object, with any extra
/// run-level fields appended (e.g. `quiesced` for chaos runs).
fn stats_json(stats: &automon_sim::RunStats, extra: &[(&str, Value)]) -> Result<String, CliError> {
    let mut v = stats.to_value();
    if let Value::Map(entries) = &mut v {
        for (k, val) in extra {
            entries.push((k.to_string(), val.clone()));
        }
    }
    serde_json::to_string(&v).map_err(|e| CliError::new(format!("JSON encoding failed: {e}")))
}

/// `automon simulate …`
pub fn run_simulate(args: &Args) -> Result<String, CliError> {
    let function = args.require("function")?;
    let dim = args.num("dim", default_dim(function))?;
    let nodes = args.num("nodes", 10usize)?;
    let rounds = args.num("rounds", 500usize)?;
    let epsilon = args.num("epsilon", 0.1f64)?;
    let seed = args.num("seed", 1u64)?;
    if epsilon <= 0.0 {
        return Err(CliError::new("--epsilon must be positive"));
    }

    let f = build_function(function, dim)?;
    let workload = build_workload(function, nodes, rounds, dim, seed)?;
    let cfg = MonitorConfig::builder(epsilon)
        .parallelism(parse_parallelism(args)?)
        .spectral_backend(parse_spectral_backend(args)?)
        .decomp_cache_opt(parse_decomp_cache(args)?)
        .build();

    let sinks = ObsSinks::from_args(args)?;

    if let Some((fleet_cfg, plan)) = parse_fleet(args, nodes)? {
        let shards = fleet_cfg.shards;
        let sim = FleetSimulation::new(f, cfg, fleet_cfg)
            .with_fault_plan(plan.clone())
            .with_telemetry(sinks.telemetry.clone());
        let report = sim.run(&workload);
        if args.flag("json") {
            let json = serde_json::to_string(&report)
                .map_err(|e| CliError::new(format!("JSON encoding failed: {e}")))?;
            sinks.finish(args)?;
            return Ok(json);
        }
        let s = &report.stats;
        let per_update = |msgs: usize| {
            if report.updates == 0 {
                0.0
            } else {
                msgs as f64 / report.updates as f64
            }
        };
        let mut out = format!(
            "function {function} (d = {dim}), {nodes} streams over {shards} shards (fleet), \
             {} rounds, ε = {epsilon}\n",
            workload.rounds()
        );
        out.push_str(&format!(
            "fleet totals   : {:>8} msgs, max error {:.5}, full/lazy syncs {}/{}\n",
            s.messages, s.max_error, s.full_syncs, s.lazy_syncs
        ));
        out.push_str(&format!(
            "root tier      : {:>8} msgs ({:.4}/update), {} leaf report(s)\n",
            report.root_messages,
            per_update(report.root_messages),
            report.leaf_reports
        ));
        out.push_str(&format!(
            "leaf tier      : {:>8} msgs ({:.4}/update)\n",
            report.leaf_messages,
            per_update(report.leaf_messages)
        ));
        if !plan.is_empty() {
            out.push_str(&format!(
                "faults         : {} node crash(es), {} restart(s), {} leaf crash(es), \
                 {} rebalance(s), evictions/rejoins {}/{}\n",
                report.node_crashes,
                report.restarts,
                report.leaf_crashes,
                report.rebalances,
                s.evictions,
                s.rejoins
            ));
        }
        for note in sinks.finish(args)? {
            out.push_str(&note);
            out.push('\n');
        }
        return Ok(out);
    }

    if let Some(plan) = parse_chaos_plan(args, nodes)? {
        let snapshot_every = args.num("snapshot-every", 16usize)?;
        if snapshot_every == 0 {
            return Err(CliError::new("--snapshot-every must be positive"));
        }
        let mut sim = ChaosSimulation::new(f.clone(), cfg, plan.clone())
            .with_telemetry(sinks.telemetry.clone());
        if let Some(dir) = args.get("wal-dir") {
            let dir = dir.to_string();
            sim = sim.with_store(
                move || {
                    Box::new(FileDisk::open(&dir).expect("--wal-dir: cannot open directory"))
                        as DynDisk
                },
                snapshot_every,
            );
        } else if !plan.coordinator_crashes.is_empty() || args.get("snapshot-every").is_some() {
            // Coordinator durability without a directory: deterministic
            // in-memory backend (replays identically to the file one).
            sim = sim.with_store(|| Box::new(MemDisk::new()) as DynDisk, snapshot_every);
        }
        let report = sim.run(&workload);
        let s = &report.stats;
        if args.flag("json") {
            let json = stats_json(s, &[("quiesced", Value::Bool(report.quiesced))])?;
            sinks.finish(args)?;
            return Ok(json);
        }
        let mut out = format!(
            "function {function} (d = {dim}), {nodes} nodes, {} rounds, ε = {epsilon}\n\
             chaos: seed {}, drop rate {}, {} crash(es), {} partition(s)\n",
            workload.rounds(),
            plan.seed,
            plan.drop_rate,
            plan.crashes.len(),
            plan.partitions.len(),
        );
        out.push_str(&format!(
            "AutoMon (chaos): {:>8} msgs, max error {:.5} (quiescent rounds), \
             final error {:.5}\n",
            s.messages, s.max_error, s.final_error
        ));
        out.push_str(&format!(
            "faults injected : {:>8}, retransmits {}, evictions {}, rejoins {}\n",
            s.injected_faults, s.retransmits, s.evictions, s.rejoins
        ));
        out.push_str(&format!(
            "recovery        : {:>8} drain rounds, max degraded error {:.5}, {}\n",
            s.recovery_rounds,
            s.max_error_during_partition,
            if report.quiesced {
                "quiesced"
            } else {
                "DEADLOCKED"
            }
        ));
        if s.coordinator_recoveries > 0 {
            out.push_str(&format!(
                "durability      : {:>8} coordinator crash/recovery cycle(s) replayed from the WAL\n",
                s.coordinator_recoveries
            ));
        }
        for note in sinks.finish(args)? {
            out.push_str(&note);
            out.push('\n');
        }
        return Ok(out);
    }

    let sim = Simulation::new(f.clone(), cfg).with_telemetry(sinks.telemetry.clone());
    let r = if f.has_constant_hessian() {
        None
    } else {
        Some(sim.tune_r(&workload.prefix((workload.rounds() / 10).clamp(20, 200))))
    };
    let stats = sim.run_with_r(&workload, r);

    if args.flag("json") {
        let json = stats_json(&stats, &[])?;
        sinks.finish(args)?;
        return Ok(json);
    }

    let mut out = String::new();
    out.push_str(&format!(
        "function {function} (d = {dim}), {nodes} nodes, {} rounds, ε = {epsilon}\n",
        workload.rounds()
    ));
    if let Some(r) = r {
        out.push_str(&format!("tuned neighborhood r̂ = {r:.4}\n"));
    }
    out.push_str(&format!(
        "AutoMon        : {:>8} msgs, max error {:.5}, full/lazy syncs {}/{}\n",
        stats.messages, stats.max_error, stats.full_syncs, stats.lazy_syncs
    ));
    for spec in args.get_all("baseline") {
        if spec == "centralization" {
            let c = run_centralization(&f, &workload);
            out.push_str(&format!(
                "Centralization : {:>8} msgs, max error {:.5}\n",
                c.messages, c.max_error
            ));
        } else if let Some(p) = spec.strip_prefix("periodic:") {
            let period: usize = p
                .parse()
                .map_err(|_| CliError::new(format!("bad baseline `{spec}`")))?;
            let s = run_periodic(&f, &workload, period);
            out.push_str(&format!(
                "Periodic({period})    : {:>8} msgs, max error {:.5}\n",
                s.messages, s.max_error
            ));
        } else {
            return Err(CliError::new(format!(
                "unknown baseline `{spec}` (centralization | periodic:<P>)"
            )));
        }
    }
    for note in sinks.finish(args)? {
        out.push_str(&note);
        out.push('\n');
    }
    Ok(out)
}

/// `automon monitor …` — run the real protocol over CSV updates.
pub fn run_monitor(args: &Args) -> Result<String, CliError> {
    let function = args.require("function")?;
    let input = args.require("input")?;
    let nodes = args.num("nodes", 0usize)?;
    if nodes == 0 {
        return Err(CliError::new("--nodes is required and must be positive"));
    }
    let epsilon = args.num("epsilon", 0.1f64)?;
    let text = std::fs::read_to_string(input)
        .map_err(|e| CliError::new(format!("cannot read `{input}`: {e}")))?;
    let updates = parse_csv_updates(&text, nodes)?;
    let dim = args.num("dim", updates[0].2.len())?;
    if dim != updates[0].2.len() {
        return Err(CliError::new(format!(
            "--dim {dim} disagrees with CSV dimension {}",
            updates[0].2.len()
        )));
    }
    let f = build_function(function, dim)?;

    let cfg = MonitorConfig::builder(epsilon)
        .parallelism(parse_parallelism(args)?)
        .spectral_backend(parse_spectral_backend(args)?)
        .decomp_cache_opt(parse_decomp_cache(args)?)
        .build();
    let mut coord = Coordinator::new(f.clone(), nodes, cfg);
    let mut node_actors: Vec<Node> = (0..nodes).map(|i| Node::new(i, f.clone())).collect();
    let mut current: Vec<Option<Vec<f64>>> = vec![None; nodes];
    let mut messages = 0usize;
    let mut rows = Vec::new();
    let mut max_error = 0.0f64;

    let mut idx = 0usize;
    while idx < updates.len() {
        let round = updates[idx].0;
        while idx < updates.len() && updates[idx].0 == round {
            let (_, node, vector) = &updates[idx];
            current[*node] = Some(vector.clone());
            if let Some(m) = node_actors[*node].update_data(vector.clone()) {
                let mut inbox = VecDeque::from([m]);
                while let Some(msg) = inbox.pop_front() {
                    messages += 1;
                    for out in coord.handle(msg) {
                        messages += 1;
                        if let Some(reply) = node_actors[out.to].handle(out.msg) {
                            inbox.push_back(reply);
                        }
                    }
                }
            }
            idx += 1;
        }
        if let (true, Some(est)) = (current.iter().all(Option::is_some), coord.current_value()) {
            let xs: Vec<Vec<f64>> = current.iter().map(|x| x.clone().expect("present")).collect();
            let mean: Vec<f64> = (0..dim)
                .map(|j| xs.iter().map(|x| x[j]).sum::<f64>() / nodes as f64)
                .collect();
            let truth = f.eval(&mean);
            max_error = max_error.max((est - truth).abs());
            rows.push((round, est, truth));
        }
    }

    let csv = render_estimates(&rows);
    if let Some(path) = args.get("output") {
        std::fs::write(path, &csv)
            .map_err(|e| CliError::new(format!("cannot write `{path}`: {e}")))?;
        Ok(format!(
            "monitored {} rounds: {} messages, max error {:.5}; estimates written to {path}",
            rows.len(),
            messages,
            max_error
        ))
    } else {
        Ok(csv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_builtin_function() {
        for (name, dim) in [
            ("inner-product", 4),
            ("quadratic", 3),
            ("kld", 8),
            ("variance", 2),
            ("rozenbrock", 2),
        ] {
            let f = build_function(name, dim).unwrap();
            assert_eq!(f.dim(), dim, "{name}");
        }
        assert!(build_function("bogus", 2).is_err());
    }

    #[test]
    fn monitor_runs_over_csv() {
        let dir = std::env::temp_dir().join("automon_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("updates.csv");
        let mut text = String::new();
        for t in 0..40 {
            let v = t as f64 * 0.01;
            text.push_str(&format!("{t},0,{},{},1.0,1.0\n", v, v * 0.5));
            text.push_str(&format!("{t},1,{},{},1.0,1.0\n", v + 0.1, v));
        }
        std::fs::write(&input, text).unwrap();
        let args = Args::parse(&[
            "--function".into(),
            "inner-product".into(),
            "--input".into(),
            input.display().to_string(),
            "--nodes".into(),
            "2".into(),
            "--epsilon".into(),
            "0.2".into(),
        ])
        .unwrap();
        let out = run_monitor(&args).unwrap();
        assert!(out.starts_with("round,estimate,truth,abs_error"));
        assert!(out.lines().count() > 30);
        // Every reported error respects the constant-Hessian guarantee.
        for line in out.lines().skip(1) {
            let err: f64 = line.rsplit(',').next().unwrap().parse().unwrap();
            assert!(err <= 0.2 + 1e-9, "{line}");
        }
    }

    #[test]
    fn simulate_chaos_is_deterministic_and_reports_faults() {
        let argv = |seed: &str| {
            Args::parse(&[
                "--function".into(),
                "inner-product".into(),
                "--rounds".into(),
                "90".into(),
                "--nodes".into(),
                "4".into(),
                "--epsilon".into(),
                "0.3".into(),
                "--chaos-seed".into(),
                seed.into(),
                "--drop-rate".into(),
                "0.1".into(),
                "--crash-node".into(),
                "2:30:60".into(),
                "--partition".into(),
                "1:10:20".into(),
            ])
            .unwrap()
        };
        let a = run_simulate(&argv("7")).unwrap();
        let b = run_simulate(&argv("7")).unwrap();
        assert_eq!(a, b, "same chaos seed must reproduce the same report");
        assert!(a.contains("AutoMon (chaos)"), "{a}");
        assert!(a.contains("quiesced"), "{a}");
        assert!(!a.contains("DEADLOCKED"), "{a}");
        let c = run_simulate(&argv("8")).unwrap();
        assert_ne!(a, c, "different seed should change the run");
    }

    #[test]
    fn chaos_specs_are_validated() {
        let base = ["--function", "inner-product", "--nodes", "3"];
        let with = |extra: &[&str]| {
            let mut v: Vec<String> = base.iter().map(|s| s.to_string()).collect();
            v.extend(extra.iter().map(|s| s.to_string()));
            run_simulate(&Args::parse(&v).unwrap())
        };
        assert!(with(&["--drop-rate", "1.5"]).is_err());
        assert!(with(&["--crash-node", "9:10"]).is_err(), "node out of range");
        assert!(with(&["--crash-node", "1:10:5"]).is_err(), "restart < crash");
        assert!(with(&["--crash-node", "nonsense"]).is_err());
        assert!(with(&["--partition", "1:20:10"]).is_err(), "until < from");
        assert!(with(&["--partition", "1,2"]).is_err());
    }

    #[test]
    fn json_output_is_parseable_runstats() {
        let base = [
            "--function",
            "inner-product",
            "--rounds",
            "60",
            "--nodes",
            "3",
            "--json",
        ];
        let argv: Vec<String> = base.iter().map(|s| s.to_string()).collect();
        let out = run_simulate(&Args::parse(&argv).unwrap()).unwrap();
        let v: Value = serde_json::from_str(&out).expect("valid JSON");
        let map = v.as_map().expect("object");
        let field = |key: &str| Value::get_field(map, key).clone();
        assert!(matches!(field("messages"), Value::UInt(n) if n > 0), "{out}");
        assert!(matches!(field("full_syncs"), Value::UInt(n) if n >= 1));
        assert!(matches!(field("quiesced"), Value::Null), "plain runs have no quiesced");

        // Chaos runs append `quiesced`.
        let mut chaos_argv = argv.clone();
        chaos_argv.extend(["--chaos-seed".to_string(), "7".to_string()]);
        let out = run_simulate(&Args::parse(&chaos_argv).unwrap()).unwrap();
        let v: Value = serde_json::from_str(&out).expect("valid JSON");
        let map = v.as_map().expect("object");
        assert!(matches!(Value::get_field(map, "quiesced"), Value::Bool(_)), "{out}");
    }

    #[test]
    fn observability_sinks_write_files_and_serve() {
        let dir = std::env::temp_dir().join("automon_cli_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("metrics.prom");
        let trace = dir.join("trace.jsonl");
        let argv: Vec<String> = [
            "--function",
            "inner-product",
            "--rounds",
            "60",
            "--nodes",
            "3",
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let out = run_simulate(&Args::parse(&argv).unwrap()).unwrap();
        assert!(out.contains("metrics written to"), "{out}");
        assert!(out.contains("trace written to"), "{out}");

        let text = std::fs::read_to_string(&metrics).unwrap();
        let samples = automon_obs::parse_prometheus(&text).expect("valid exposition");
        assert!(
            automon_obs::value_of(&samples, "automon_coord_full_syncs_total", &[])
                .is_some_and(|v| v >= 1.0),
            "{text}"
        );
        assert!(
            automon_obs::value_of(&samples, "automon_node_checks_total", &[]).is_some(),
            "{text}"
        );

        let jsonl = std::fs::read_to_string(&trace).unwrap();
        assert!(!jsonl.is_empty());
        for line in jsonl.lines() {
            let v: Value = serde_json::from_str(line).expect("each trace line is JSON");
            let map = v.as_map().expect("object");
            assert!(matches!(Value::get_field(map, "seq"), Value::UInt(_)), "{line}");
            assert!(matches!(Value::get_field(map, "kind"), Value::Str(_)), "{line}");
        }

        // Byte-identical on a re-run with the same arguments.
        run_simulate(&Args::parse(&argv).unwrap()).unwrap();
        assert_eq!(jsonl, std::fs::read_to_string(&trace).unwrap());
    }

    #[test]
    fn serve_metrics_responds_during_run() {
        let argv: Vec<String> = [
            "--function",
            "inner-product",
            "--rounds",
            "40",
            "--nodes",
            "3",
            "--serve-metrics",
            "127.0.0.1:0",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let out = run_simulate(&Args::parse(&argv).unwrap()).unwrap();
        assert!(out.contains("metrics served at http://127.0.0.1:"), "{out}");
    }

    #[test]
    fn spectral_smoke_passes_and_validates_args() {
        let out = run_spectral_smoke(
            &Args::parse(&["--dim".into(), "24".into(), "--seed".into(), "3".into()]).unwrap(),
        )
        .unwrap();
        assert!(out.contains("spectral smoke PASS"), "{out}");
        assert!(out.contains("Lanczos extremes"), "{out}");
        assert!(run_spectral_smoke(&Args::parse(&["--dim".into(), "0".into()]).unwrap()).is_err());
        assert!(
            run_spectral_smoke(&Args::parse(&["--tol".into(), "0".into()]).unwrap()).is_err()
        );
    }

    #[test]
    fn spectral_backend_flag_is_parsed() {
        let base = |backend: &str| {
            Args::parse(&[
                "--function".into(),
                "rozenbrock".into(),
                "--rounds".into(),
                "40".into(),
                "--nodes".into(),
                "2".into(),
                "--epsilon".into(),
                "0.5".into(),
                "--spectral-backend".into(),
                backend.into(),
            ])
            .unwrap()
        };
        assert!(run_simulate(&base("ql")).unwrap().contains("AutoMon"));
        assert!(run_simulate(&base("jacobi")).unwrap().contains("AutoMon"));
        let err = run_simulate(&base("qr")).unwrap_err();
        assert!(err.to_string().contains("unknown spectral backend"), "{err}");
    }

    #[test]
    fn decomp_cache_flag_is_parsed() {
        let base = |extra: &[&str]| {
            let mut argv: Vec<String> = [
                "--function",
                "rozenbrock",
                "--rounds",
                "40",
                "--nodes",
                "2",
                "--epsilon",
                "0.5",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            argv.extend(extra.iter().map(|s| s.to_string()));
            Args::parse(&argv).unwrap()
        };
        // Off by default, and every policy is selectable.
        let baseline = run_simulate(&base(&[])).unwrap();
        for policy in ["lru-k", "slru", "arc"] {
            let out = run_simulate(&base(&["--decomp-cache", policy])).unwrap();
            // Cache on must not change the monitoring output.
            assert_eq!(out, baseline, "--decomp-cache {policy} changed results");
        }
        let with_caps = run_simulate(&base(&[
            "--decomp-cache",
            "arc",
            "--decomp-cache-capacity",
            "8",
            "--decomp-cache-warm",
        ]))
        .unwrap();
        assert!(with_caps.contains("AutoMon"));
        let err = run_simulate(&base(&["--decomp-cache", "fifo"])).unwrap_err();
        assert!(
            err.to_string().contains("unknown decomposition-cache policy"),
            "{err}"
        );
        let err = run_simulate(&base(&["--decomp-cache-capacity", "8"])).unwrap_err();
        assert!(err.to_string().contains("require --decomp-cache"), "{err}");
    }

    #[test]
    fn fleet_flags_run_the_two_tier_simulator() {
        let base = |extra: &[&str]| {
            let mut argv: Vec<String> = [
                "--function",
                "inner-product",
                "--rounds",
                "50",
                "--nodes",
                "12",
                "--epsilon",
                "0.3",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            argv.extend(extra.iter().map(|s| s.to_string()));
            run_simulate(&Args::parse(&argv).unwrap())
        };
        let a = base(&["--fleet", "--shards", "4"]).unwrap();
        assert!(a.contains("12 streams over 4 shards (fleet)"), "{a}");
        assert!(a.contains("root tier"), "{a}");
        assert!(a.contains("leaf tier"), "{a}");
        // Deterministic: same flags, byte-identical report.
        assert_eq!(a, base(&["--fleet", "--shards", "4"]).unwrap());

        // Fleet faults run through the deterministic schedule and are
        // reported.
        let faulted = base(&[
            "--fleet",
            "--shards",
            "4",
            "--crash-node",
            "3:10:25",
            "--crash-leaf",
            "1:30",
        ])
        .unwrap();
        assert!(faulted.contains("1 node crash(es)"), "{faulted}");
        assert!(faulted.contains("1 leaf crash(es)"), "{faulted}");
        assert!(faulted.contains("1 rebalance(s)"), "{faulted}");

        // JSON mode emits the per-tier report.
        let json = base(&["--fleet", "--shards", "4", "--json"]).unwrap();
        let v: Value = serde_json::from_str(&json).expect("valid JSON");
        let map = v.as_map().expect("object");
        assert!(
            matches!(Value::get_field(map, "root_messages"), Value::UInt(_)),
            "{json}"
        );
        assert!(
            matches!(Value::get_field(map, "leaf_reports"), Value::UInt(_)),
            "{json}"
        );
    }

    #[test]
    fn fleet_flag_hygiene_rejects_contradictory_combos() {
        let base = |extra: &[&str]| {
            let mut argv: Vec<String> = [
                "--function",
                "inner-product",
                "--rounds",
                "40",
                "--nodes",
                "12",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            argv.extend(extra.iter().map(|s| s.to_string()));
            run_simulate(&Args::parse(&argv).unwrap())
        };
        // Fleet-only flags without --fleet.
        for flags in [
            &["--shards", "4"][..],
            &["--leaf-epsilon-frac", "0.5"][..],
            &["--crash-leaf", "1:30"][..],
        ] {
            let err = base(flags).unwrap_err();
            assert!(err.to_string().contains("requires --fleet"), "{flags:?}: {err}");
        }
        // Flat-runner flags with --fleet.
        for flags in [
            &["--fleet", "--drop-rate", "0.1"][..],
            &["--fleet", "--partition", "1:10:20"][..],
            &["--fleet", "--crash-coordinator", "30"][..],
            &["--fleet", "--wal-dir", "/tmp/x"][..],
            &["--fleet", "--chaos-seed", "7"][..],
            &["--fleet", "--baseline", "centralization"][..],
        ] {
            let err = base(flags).unwrap_err();
            assert!(
                err.to_string().contains("cannot be combined with --fleet"),
                "{flags:?}: {err}"
            );
        }
        // Malformed fleet values.
        assert!(base(&["--fleet", "--shards", "0"]).is_err());
        assert!(base(&["--fleet", "--shards", "20"]).is_err(), "12 < 20");
        assert!(base(&["--fleet", "--leaf-epsilon-frac", "1.5"]).is_err());
        assert!(base(&["--fleet", "--crash-leaf", "9:10"]).is_err(), "leaf range");
        assert!(base(&["--fleet", "--crash-leaf", "nonsense"]).is_err());
        assert!(base(&["--fleet", "--crash-node", "3:10:5"]).is_err(), "restart < crash");
        assert!(base(&["--fleet", "--crash-node", "99:10"]).is_err(), "node range");
    }

    #[test]
    fn crash_coordinator_flag_runs_and_is_deterministic() {
        let base = |extra: &[&str]| {
            let mut argv: Vec<String> = [
                "--function",
                "inner-product",
                "--dim",
                "4",
                "--rounds",
                "80",
                "--nodes",
                "4",
                "--epsilon",
                "0.3",
                "--chaos-seed",
                "7",
                "--crash-coordinator",
                "30",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            argv.extend(extra.iter().map(|s| s.to_string()));
            Args::parse(&argv).unwrap()
        };
        let a = run_simulate(&base(&["--json"])).unwrap();
        let b = run_simulate(&base(&["--json"])).unwrap();
        assert_eq!(a, b, "same seed + crash schedule must be byte-identical");
        assert!(a.contains("\"coordinator_recoveries\":1"), "{a}");
        assert!(a.contains("\"cause\":\"recovery\""), "recovery ledger cause: {a}");
        // The text report names the durability line only on crash runs.
        let text = run_simulate(&base(&[])).unwrap();
        assert!(text.contains("durability"), "{text}");
        assert!(text.contains("1 coordinator crash/recovery cycle"), "{text}");
        // Cadence flag composes; zero is rejected; garbage rounds are
        // rejected.
        assert!(run_simulate(&base(&["--snapshot-every", "4"])).is_ok());
        let err = run_simulate(&base(&["--snapshot-every", "0"])).unwrap_err();
        assert!(err.to_string().contains("--snapshot-every"), "{err}");
        let bad = Args::parse(&[
            "--function".into(),
            "inner-product".into(),
            "--crash-coordinator".into(),
            "soon".into(),
        ])
        .unwrap();
        let err = run_simulate(&bad).unwrap_err();
        assert!(err.to_string().contains("--crash-coordinator"), "{err}");
    }

    #[test]
    fn wal_dir_backend_matches_in_memory() {
        let dir = std::env::temp_dir().join(format!("automon_cli_wal_{}", std::process::id()));
        let base = |extra: &[&str]| {
            let mut argv: Vec<String> = [
                "--function",
                "inner-product",
                "--dim",
                "4",
                "--rounds",
                "60",
                "--nodes",
                "3",
                "--epsilon",
                "0.3",
                "--chaos-seed",
                "9",
                "--crash-coordinator",
                "25",
                "--json",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            argv.extend(extra.iter().map(|s| s.to_string()));
            Args::parse(&argv).unwrap()
        };
        let mem = run_simulate(&base(&[])).unwrap();
        let file = run_simulate(&base(&["--wal-dir", &dir.display().to_string()])).unwrap();
        // The store leaves its files behind for inspection.
        let names: Vec<_> = std::fs::read_dir(&dir)
            .expect("--wal-dir created")
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(mem, file, "file backend must replay identically to memory");
        assert!(
            names.iter().any(|n| n.starts_with("wal-")),
            "WAL segments persisted: {names:?}"
        );
        assert!(
            names.iter().any(|n| n.starts_with("snap-")),
            "checkpoints persisted: {names:?}"
        );
    }

    #[test]
    fn simulate_variance_with_defaults() {
        let args = Args::parse(&[
            "--function".into(),
            "variance".into(),
            "--rounds".into(),
            "80".into(),
            "--nodes".into(),
            "3".into(),
        ])
        .unwrap();
        let out = run_simulate(&args).unwrap();
        assert!(out.contains("AutoMon"));
    }
}

/// `automon spectral-smoke …` — fixed-seed parity check between the QL
/// solver, the Jacobi oracle, and the matrix-free Lanczos extremes on
/// one deterministic symmetric matrix.
///
/// CI runs this as the spectral-parity gate: the three kernels must
/// agree on the spectrum within `--tol` (relative to the spectral
/// radius) or the command errors, which exits non-zero.
pub fn run_spectral_smoke(args: &Args) -> Result<String, CliError> {
    use automon_linalg::{
        JacobiOptions, LanczosOptions, LanczosStats, LanczosWorkspace, Matrix, MatrixOperator,
        RitzSide, SymEigen,
    };
    let dim = args.num("dim", 40usize)?;
    let seed = args.num("seed", 1u64)?;
    let tol = args.num("tol", 1e-9f64)?;
    if dim == 0 {
        return Err(CliError::new("--dim must be positive"));
    }
    if tol <= 0.0 {
        return Err(CliError::new("--tol must be positive"));
    }

    // Deterministic symmetric test matrix from an LCG stream.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    let mut h = Matrix::from_fn(dim, dim, |_, _| next());
    h.symmetrize();

    let ql = SymEigen::new(&h);
    let jac = SymEigen::with_options(&h, JacobiOptions::default());
    let scale = jac.lambda_min().abs().max(jac.lambda_max().abs()).max(1.0);
    let worst_full = ql
        .values
        .iter()
        .zip(&jac.values)
        .map(|(a, b)| (a - b).abs() / scale)
        .fold(0.0f64, f64::max);
    if worst_full > tol {
        return Err(CliError::new(format!(
            "QL vs Jacobi eigenvalues disagree: worst rel err {worst_full:.3e} > {tol:.1e}"
        )));
    }

    // Lanczos extremes, seeded the way the ADCD-X search seeds them
    // (Gershgorin midpoint shift, half-width scale).
    let (mut glo, mut ghi) = (f64::INFINITY, f64::NEG_INFINITY);
    for i in 0..dim {
        let mut radius = 0.0;
        for j in 0..dim {
            if i != j {
                radius += h[(i, j)].abs();
            }
        }
        glo = glo.min(h[(i, i)] - radius);
        ghi = ghi.max(h[(i, i)] + radius);
    }
    let mut ws = LanczosWorkspace::new();
    let mut stats = LanczosStats::default();
    let mut op = MatrixOperator::new(&h);
    let (lo, hi) = ws.extremes(
        &mut op,
        0.5 * (glo + ghi),
        0.5 * (ghi - glo),
        RitzSide::Smallest,
        &LanczosOptions::default(),
        &mut stats,
    );
    let err_lo = (lo - jac.lambda_min()).abs() / scale;
    let err_hi = (hi - jac.lambda_max()).abs() / scale;
    if err_lo > tol || err_hi > tol {
        return Err(CliError::new(format!(
            "Lanczos extremes disagree with Jacobi: λ_min rel err {err_lo:.3e}, \
             λ_max rel err {err_hi:.3e} (tol {tol:.1e})"
        )));
    }

    Ok(format!(
        "spectral smoke PASS: d = {dim}, seed = {seed}\n\
         QL vs Jacobi   : worst eigenvalue rel err {worst_full:.3e} (tol {tol:.1e})\n\
         Lanczos extremes: λ_min {lo:.6}, λ_max {hi:.6} \
         (rel err {err_lo:.3e} / {err_hi:.3e}, {} iters, {} reorth passes)\n",
        stats.iterations, stats.reorth_passes
    ))
}

/// `automon tune …` — run Algorithm 2 over a recorded CSV prefix and
/// report the recommended neighborhood size with its violation grid.
pub fn run_tune(args: &Args) -> Result<String, CliError> {
    let function = args.require("function")?;
    let input = args.require("input")?;
    let nodes = args.num("nodes", 0usize)?;
    if nodes == 0 {
        return Err(CliError::new("--nodes is required and must be positive"));
    }
    let epsilon = args.num("epsilon", 0.1f64)?;
    let text = std::fs::read_to_string(input)
        .map_err(|e| CliError::new(format!("cannot read `{input}`: {e}")))?;
    let updates = parse_csv_updates(&text, nodes)?;
    let dim = updates[0].2.len();
    let f = build_function(function, dim)?;
    if f.has_constant_hessian() {
        return Ok(format!(
            "function `{function}` has a constant Hessian: AutoMon uses \
             ADCD-E, which needs no neighborhood — nothing to tune."
        ));
    }

    // Per-node series in arrival order.
    let mut series: Vec<Vec<Vec<f64>>> = vec![Vec::new(); nodes];
    for (_, node, vector) in updates {
        series[node].push(vector);
    }
    let cfg = MonitorConfig::builder(epsilon).build();
    let result = automon_core::tuning::tune_neighborhood_size(&f, &series, &cfg);

    let mut out = format!(
        "Algorithm 2 on {} rounds × {nodes} nodes (ε = {epsilon}):\n\
         recommended neighborhood size r̂ = {:.6}\n\n\
         {:>10}  {:>14}  {:>10}  {:>8}\n",
        series.iter().map(Vec::len).max().unwrap_or(0),
        result.r,
        "r",
        "neighborhood",
        "safe zone",
        "total"
    );
    for (r, counts) in &result.grid {
        out.push_str(&format!(
            "{r:>10.5}  {:>14}  {:>10}  {:>8}\n",
            counts.neighborhood,
            counts.safezone,
            counts.total_violations()
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tune_tests {
    use super::*;

    #[test]
    fn tune_over_csv_prefix() {
        let dir = std::env::temp_dir().join("automon_cli_tune_test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("prefix.csv");
        let mut text = String::new();
        for t in 0..50 {
            for node in 0..2 {
                let v = t as f64 * 0.02 + node as f64 * 0.01;
                text.push_str(&format!("{t},{node},{},{}\n", v, v * 0.5));
            }
        }
        std::fs::write(&input, text).unwrap();
        let args = Args::parse(&[
            "--function".into(),
            "rozenbrock".into(),
            "--input".into(),
            input.display().to_string(),
            "--nodes".into(),
            "2".into(),
            "--epsilon".into(),
            "0.5".into(),
        ])
        .unwrap();
        let out = run_tune(&args).unwrap();
        assert!(out.contains("recommended neighborhood size"), "{out}");
        assert!(out.contains("safe zone"), "{out}");
    }

    #[test]
    fn tune_skips_constant_hessian_functions() {
        let dir = std::env::temp_dir().join("automon_cli_tune_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("prefix.csv");
        std::fs::write(&input, "0,0,1.0,2.0,3.0,4.0\n").unwrap();
        let args = Args::parse(&[
            "--function".into(),
            "inner-product".into(),
            "--input".into(),
            input.display().to_string(),
            "--nodes".into(),
            "1".into(),
        ])
        .unwrap();
        let out = run_tune(&args).unwrap();
        assert!(out.contains("nothing to tune"), "{out}");
    }
}
