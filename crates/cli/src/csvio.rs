//! CSV input/output for the `monitor` subcommand.

use crate::CliError;

/// One parsed update: `(round, node, vector)`.
pub type Update = (usize, usize, Vec<f64>);

/// Parse header-free CSV rows `round,node,x1,...,xd`.
///
/// Validates: consistent dimension, `node < nodes`, non-decreasing
/// rounds. Blank lines and `#` comments are skipped.
pub fn parse_csv_updates(text: &str, nodes: usize) -> Result<Vec<Update>, CliError> {
    let mut out = Vec::new();
    let mut dim: Option<usize> = None;
    let mut last_round = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() < 3 {
            return Err(CliError::new(format!(
                "line {}: need `round,node,x1,...`",
                lineno + 1
            )));
        }
        let round: usize = fields[0]
            .parse()
            .map_err(|_| CliError::new(format!("line {}: bad round `{}`", lineno + 1, fields[0])))?;
        let node: usize = fields[1]
            .parse()
            .map_err(|_| CliError::new(format!("line {}: bad node `{}`", lineno + 1, fields[1])))?;
        if node >= nodes {
            return Err(CliError::new(format!(
                "line {}: node {node} out of range (nodes = {nodes})",
                lineno + 1
            )));
        }
        if round < last_round {
            return Err(CliError::new(format!(
                "line {}: rounds must be non-decreasing ({} after {})",
                lineno + 1,
                round,
                last_round
            )));
        }
        last_round = round;
        let vector: Vec<f64> = fields[2..]
            .iter()
            .map(|f| {
                f.parse::<f64>()
                    .map_err(|_| CliError::new(format!("line {}: bad value `{f}`", lineno + 1)))
            })
            .collect::<Result<_, _>>()?;
        match dim {
            None => dim = Some(vector.len()),
            Some(d) if d != vector.len() => {
                return Err(CliError::new(format!(
                    "line {}: dimension {} != first row's {}",
                    lineno + 1,
                    vector.len(),
                    d
                )))
            }
            _ => {}
        }
        out.push((round, node, vector));
    }
    if out.is_empty() {
        return Err(CliError::new("no updates in input"));
    }
    Ok(out)
}

/// Render per-round estimates as CSV `round,estimate,truth,abs_error`.
pub fn render_estimates(rows: &[(usize, f64, f64)]) -> String {
    let mut s = String::from("round,estimate,truth,abs_error\n");
    for &(round, est, truth) in rows {
        s.push_str(&format!(
            "{round},{est},{truth},{}\n",
            (est - truth).abs()
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_valid_updates() {
        let text = "# comment\n0,0,1.0,2.0\n0,1,3.0,4.0\n\n1,0,1.5,2.5\n";
        let updates = parse_csv_updates(text, 2).unwrap();
        assert_eq!(updates.len(), 3);
        assert_eq!(updates[0], (0, 0, vec![1.0, 2.0]));
        assert_eq!(updates[2].0, 1);
    }

    #[test]
    fn rejects_malformed_rows() {
        assert!(parse_csv_updates("0,0", 1).is_err()); // too few fields
        assert!(parse_csv_updates("x,0,1.0", 1).is_err()); // bad round
        assert!(parse_csv_updates("0,9,1.0", 2).is_err()); // node range
        assert!(parse_csv_updates("1,0,1.0\n0,0,1.0", 1).is_err()); // order
        assert!(parse_csv_updates("0,0,1.0\n1,0,1.0,2.0", 1).is_err()); // dim
        assert!(parse_csv_updates("", 1).is_err()); // empty
    }

    #[test]
    fn renders_estimates() {
        let s = render_estimates(&[(0, 1.0, 1.5), (1, 2.0, 2.0)]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "round,estimate,truth,abs_error");
        assert!(lines[1].starts_with("0,1,1.5,0.5"));
        assert!(lines[2].starts_with("1,2,2,0"));
    }
}
