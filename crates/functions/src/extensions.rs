//! Extension functions from the paper's §5/§6 discussion: sketch queries
//! and augmented-vector statistics.

use automon_autodiff::{Scalar, ScalarFn};

/// Second-moment (F₂) query over an AMS sketch local vector
/// (paper §5: "AutoMon can monitor a linear sketch by defining `f` as
/// the query function and `x` as the sketched data structure").
///
/// `f(s) = (1/w) Σ_j s_j²` — a pure quadratic form with constant Hessian
/// `(2/w)·I`, so AutoMon automatically selects ADCD-E and the
/// deterministic ε-guarantee applies to the sketch estimate.
#[derive(Debug, Clone, Copy)]
pub struct F2FromSketch {
    width: usize,
}

impl F2FromSketch {
    /// Query over sketches of `width` counters.
    ///
    /// # Panics
    /// Panics when `width` is zero.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "F2FromSketch: zero width");
        Self { width }
    }
}

impl ScalarFn for F2FromSketch {
    fn dim(&self) -> usize {
        self.width
    }

    fn call<S: Scalar>(&self, x: &[S]) -> S {
        let mut acc = S::from_f64(0.0);
        for &s in x {
            acc = acc + s * s;
        }
        acc * S::from_f64(1.0 / self.width as f64)
    }

    fn constant_hessian_hint(&self) -> Option<bool> {
        Some(true)
    }
}

/// Simple-regression slope from the augmented moment vector
/// `x = [mx, my, mxx, mxy]` (paper §6's function-rewriting direction;
/// the augmentation itself lives in `automon_data::regression`):
///
/// ```text
/// slope(x) = (mxy - mx·my) / (mxx - mx² + ridge)
/// ```
///
/// The ridge keeps the denominator bounded away from zero so the
/// function stays differentiable on the whole neighborhood the
/// eigenvalue search explores. Non-constant Hessian ⇒ ADCD-X.
#[derive(Debug, Clone, Copy)]
pub struct RegressionSlope {
    ridge: f64,
}

impl RegressionSlope {
    /// Slope with the given ridge regularizer.
    ///
    /// # Panics
    /// Panics when `ridge ≤ 0` (a positive ridge is what makes the
    /// function total).
    pub fn new(ridge: f64) -> Self {
        assert!(ridge > 0.0, "RegressionSlope: ridge must be positive");
        Self { ridge }
    }
}

impl Default for RegressionSlope {
    fn default() -> Self {
        Self::new(1e-2)
    }
}

impl ScalarFn for RegressionSlope {
    fn dim(&self) -> usize {
        4
    }

    fn call<S: Scalar>(&self, x: &[S]) -> S {
        let (mx, my, mxx, mxy) = (x[0], x[1], x[2], x[3]);
        let cov = mxy - mx * my;
        // Variance can dip negative for off-manifold points in B; the
        // abs keeps the denominator positive everywhere, matching the
        // ridge's purpose.
        let var = (mxx - mx * mx).abs() + S::from_f64(self.ridge);
        cov / var
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automon_autodiff::{AutoDiffFn, DifferentiableFn};

    #[test]
    fn f2_query_matches_sketch_estimate() {
        let f = AutoDiffFn::new(F2FromSketch::new(4));
        // mean of squares of [1, -2, 3, 0] = 14/4.
        assert!((f.eval(&[1.0, -2.0, 3.0, 0.0]) - 3.5).abs() < 1e-12);
        assert!(f.has_constant_hessian());
        let h = f.hessian(&[0.3; 4]);
        assert!((h[(0, 0)] - 0.5).abs() < 1e-12);
        assert_eq!(h[(0, 1)], 0.0);
    }

    #[test]
    fn slope_recovers_linear_relation() {
        // Perfect relation y = 2x over x ∈ {-1, 0, 1}:
        // mx = 0, my = 0, mxx = 2/3, mxy = 4/3 → slope = 2 (ridge-damped).
        let f = AutoDiffFn::new(RegressionSlope::new(1e-6));
        let v = f.eval(&[0.0, 0.0, 2.0 / 3.0, 4.0 / 3.0]);
        assert!((v - 2.0).abs() < 1e-4, "slope {v}");
    }

    #[test]
    fn slope_is_differentiable_everywhere() {
        let f = AutoDiffFn::new(RegressionSlope::default());
        // Degenerate point: zero variance — ridge keeps it finite.
        let (v, g) = f.grad(&[1.0, 1.0, 1.0, 1.0]);
        assert!(v.is_finite());
        assert!(g.iter().all(|gi| gi.is_finite()));
        assert!(!f.has_constant_hessian());
    }
}

/// Frequency moment `F_k(x) = Σᵢ xᵢᵏ` over a (non-negative) frequency /
/// histogram vector — the Stream-PolyLog-style query family the paper's
/// §5 contrasts with universal sketches. For `k ≥ 1` and `x ≥ 0` the
/// function is convex, so AutoMon's deterministic guarantee applies
/// (`k = 2` additionally has a constant Hessian and gets ADCD-E).
#[derive(Debug, Clone, Copy)]
pub struct FrequencyMoment {
    d: usize,
    k: i32,
}

impl FrequencyMoment {
    /// `F_k` over `d`-dimensional frequency vectors.
    ///
    /// # Panics
    /// Panics when `d` is zero or `k < 1`.
    pub fn new(d: usize, k: i32) -> Self {
        assert!(d > 0, "FrequencyMoment: zero dimension");
        assert!(k >= 1, "FrequencyMoment: k must be ≥ 1");
        Self { d, k }
    }
}

impl ScalarFn for FrequencyMoment {
    fn dim(&self) -> usize {
        self.d
    }

    fn call<S: Scalar>(&self, x: &[S]) -> S {
        let mut acc = S::from_f64(0.0);
        for &xi in x {
            acc = acc + xi.powi(self.k);
        }
        acc
    }

    fn lower_bounds(&self) -> Option<Vec<f64>> {
        Some(vec![0.0; self.d])
    }

    fn constant_hessian_hint(&self) -> Option<bool> {
        // F₁ is linear and F₂ quadratic: both constant-Hessian.
        Some(self.k <= 2).filter(|&c| c)
    }
}

#[cfg(test)]
mod moment_tests {
    use super::*;
    use automon_autodiff::{AutoDiffFn, DifferentiableFn};
    use automon_linalg::SymEigen;

    #[test]
    fn values_and_variants() {
        let f2 = AutoDiffFn::new(FrequencyMoment::new(3, 2));
        assert_eq!(f2.eval(&[1.0, 2.0, 3.0]), 14.0);
        assert!(f2.has_constant_hessian());
        let f3 = AutoDiffFn::new(FrequencyMoment::new(3, 3));
        assert_eq!(f3.eval(&[1.0, 2.0, 3.0]), 36.0);
        assert!(!f3.has_constant_hessian());
    }

    #[test]
    fn convex_on_nonnegative_orthant() {
        let f3 = AutoDiffFn::new(FrequencyMoment::new(3, 3));
        for x in [[0.1, 0.5, 2.0], [1.0, 1.0, 1.0], [0.0, 3.0, 0.2]] {
            let h = f3.hessian(&x);
            assert!(SymEigen::new(&h).lambda_min() >= -1e-9, "{x:?}");
        }
    }

    #[test]
    #[should_panic(expected = "k must be ≥ 1")]
    fn zeroth_moment_rejected() {
        FrequencyMoment::new(2, 0);
    }
}

/// Cosine similarity `⟨u, v⟩ / (‖u‖·‖v‖ + ridge)` over packed vectors
/// `x = [u, v]` — a staple of the hand-crafted GM literature (the Convex
/// Bound paper monitors it); AutoMon handles it automatically via
/// ADCD-X.
#[derive(Debug, Clone, Copy)]
pub struct CosineSimilarity {
    d: usize,
    ridge: f64,
}

impl CosineSimilarity {
    /// Cosine similarity over `R^(d/2) × R^(d/2)` with a denominator
    /// ridge keeping the function total.
    ///
    /// # Panics
    /// Panics when `d` is odd/zero or `ridge ≤ 0`.
    pub fn new(d: usize, ridge: f64) -> Self {
        assert!(d > 0 && d.is_multiple_of(2), "CosineSimilarity: even dimension");
        assert!(ridge > 0.0, "CosineSimilarity: positive ridge required");
        Self { d, ridge }
    }
}

impl ScalarFn for CosineSimilarity {
    fn dim(&self) -> usize {
        self.d
    }

    fn call<S: Scalar>(&self, x: &[S]) -> S {
        let half = self.d / 2;
        let (u, v) = x.split_at(half);
        let dot = automon_autodiff::ops::dot(u, v);
        let nu = automon_autodiff::ops::norm_sq(u).sqrt();
        let nv = automon_autodiff::ops::norm_sq(v).sqrt();
        dot / (nu * nv + S::from_f64(self.ridge))
    }
}

/// Pearson correlation from the augmented moment vector
/// `x = [mx, my, mxx, myy, mxy]` (the §6 rewriting direction applied to
/// another classic statistic):
///
/// ```text
/// ρ(x) = (mxy - mx·my) / √((mxx - mx² + ridge)(myy - my² + ridge))
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PearsonCorrelation {
    ridge: f64,
}

impl PearsonCorrelation {
    /// Correlation with the given variance ridge.
    ///
    /// # Panics
    /// Panics when `ridge ≤ 0`.
    pub fn new(ridge: f64) -> Self {
        assert!(ridge > 0.0, "PearsonCorrelation: positive ridge required");
        Self { ridge }
    }
}

impl Default for PearsonCorrelation {
    fn default() -> Self {
        Self::new(1e-2)
    }
}

impl ScalarFn for PearsonCorrelation {
    fn dim(&self) -> usize {
        5
    }

    fn call<S: Scalar>(&self, x: &[S]) -> S {
        let (mx, my, mxx, myy, mxy) = (x[0], x[1], x[2], x[3], x[4]);
        let ridge = S::from_f64(self.ridge);
        let cov = mxy - mx * my;
        let vx = (mxx - mx * mx).abs() + ridge;
        let vy = (myy - my * my).abs() + ridge;
        cov / (vx * vy).sqrt()
    }
}

#[cfg(test)]
mod correlation_tests {
    use super::*;
    use automon_autodiff::{AutoDiffFn, DifferentiableFn};

    #[test]
    fn cosine_of_parallel_and_orthogonal_vectors() {
        let f = AutoDiffFn::new(CosineSimilarity::new(4, 1e-9));
        assert!((f.eval(&[1.0, 2.0, 2.0, 4.0]) - 1.0).abs() < 1e-6);
        assert!(f.eval(&[1.0, 0.0, 0.0, 1.0]).abs() < 1e-9);
        assert!((f.eval(&[1.0, 0.0, -1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert!(!f.has_constant_hessian());
    }

    #[test]
    fn cosine_gradient_matches_finite_difference() {
        let f = AutoDiffFn::new(CosineSimilarity::new(4, 1e-6));
        let x = [0.8, -0.3, 0.5, 0.9];
        let (_, g) = f.grad(&x);
        let fd = automon_autodiff::finite_diff::gradient(|y| f.eval(y), &x, 1e-6);
        for (a, b) in g.iter().zip(&fd) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn pearson_recovers_known_correlations() {
        let f = AutoDiffFn::new(PearsonCorrelation::new(1e-9));
        // Perfect positive: y = x over {-1, 0, 1}: mx=my=0, mxx=myy=mxy=2/3.
        let v = f.eval(&[0.0, 0.0, 2.0 / 3.0, 2.0 / 3.0, 2.0 / 3.0]);
        assert!((v - 1.0).abs() < 1e-6, "ρ = {v}");
        // Perfect negative.
        let v = f.eval(&[0.0, 0.0, 2.0 / 3.0, 2.0 / 3.0, -2.0 / 3.0]);
        assert!((v + 1.0).abs() < 1e-6);
        // Independence: mxy = mx·my.
        let v = f.eval(&[0.5, 0.2, 0.35, 0.14, 0.1]);
        assert!(v.abs() < 1e-6);
    }

    #[test]
    fn pearson_finite_at_degenerate_moments() {
        let f = AutoDiffFn::new(PearsonCorrelation::default());
        let (v, g) = f.grad(&[1.0, 1.0, 1.0, 1.0, 1.0]);
        assert!(v.is_finite());
        assert!(g.iter().all(|gi| gi.is_finite()));
    }
}
