//! KL divergence and entropy over histogram local vectors.

use automon_autodiff::{Scalar, ScalarFn};

/// τ-smoothed Kullback–Leibler divergence (paper §4.2).
///
/// The local vector packs two histograms `x = [p, q]` with `d/2` bins
/// each; the function is
///
/// ```text
/// f(x) = Σᵢ (pᵢ + τ) · ln((pᵢ + τ) / (qᵢ + τ))
/// ```
///
/// with `τ = 1/(n·W)` (the minimal representable probability for `n`
/// nodes and window `W`), exactly the paper's variant for avoiding zero
/// entries. KLD is jointly convex in `(p, q)`, so AutoMon's deterministic
/// error guarantee applies (paper §3.7). The declared domain keeps the
/// eigenvalue search inside the probability simplex box `[0, 1]^d`.
///
/// ```
/// use automon_autodiff::AutoDiffFn;
/// use automon_functions::KlDivergence;
///
/// let f = AutoDiffFn::new(KlDivergence::new(4, 1e-6));
/// // Identical histograms → divergence ≈ 0.
/// assert!(f.eval(&[0.3, 0.7, 0.3, 0.7]).abs() < 1e-9);
/// // Skewed P against uniform Q → positive divergence.
/// assert!(f.eval(&[0.9, 0.1, 0.5, 0.5]) > 0.2);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct KlDivergence {
    d: usize,
    tau: f64,
}

impl KlDivergence {
    /// KLD over `d/2`-bin histogram pairs with smoothing `tau`.
    ///
    /// # Panics
    /// Panics when `d` is odd or zero, or `tau ≤ 0`.
    pub fn new(d: usize, tau: f64) -> Self {
        assert!(d > 0 && d.is_multiple_of(2), "KlDivergence: dimension must be even");
        assert!(tau > 0.0, "KlDivergence: tau must be positive");
        Self { d, tau }
    }

    /// The paper's `τ = 1/(n·W)` for `n` nodes and window length `W`.
    pub fn with_paper_tau(d: usize, nodes: usize, window: usize) -> Self {
        Self::new(d, 1.0 / (nodes as f64 * window as f64))
    }

    /// The smoothing constant in use.
    pub fn tau(&self) -> f64 {
        self.tau
    }
}

impl ScalarFn for KlDivergence {
    fn dim(&self) -> usize {
        self.d
    }

    fn call<S: Scalar>(&self, x: &[S]) -> S {
        let half = self.d / 2;
        let tau = S::from_f64(self.tau);
        let mut acc = S::from_f64(0.0);
        for i in 0..half {
            let p = x[i] + tau;
            let q = x[half + i] + tau;
            acc = acc + p * (p.ln() - q.ln());
        }
        acc
    }

    fn lower_bounds(&self) -> Option<Vec<f64>> {
        Some(vec![0.0; self.d])
    }

    fn upper_bounds(&self) -> Option<Vec<f64>> {
        Some(vec![1.0; self.d])
    }
}

/// τ-smoothed Shannon entropy `f(p) = -Σ (pᵢ + τ) ln(pᵢ + τ)` over a
/// single histogram (concave; a natural companion workload to KLD from
/// the GM literature).
#[derive(Debug, Clone, Copy)]
pub struct Entropy {
    d: usize,
    tau: f64,
}

impl Entropy {
    /// Entropy over `d`-bin histograms with smoothing `tau`.
    ///
    /// # Panics
    /// Panics when `d` is zero or `tau ≤ 0`.
    pub fn new(d: usize, tau: f64) -> Self {
        assert!(d > 0, "Entropy: dimension must be positive");
        assert!(tau > 0.0, "Entropy: tau must be positive");
        Self { d, tau }
    }
}

impl ScalarFn for Entropy {
    fn dim(&self) -> usize {
        self.d
    }

    fn call<S: Scalar>(&self, x: &[S]) -> S {
        let tau = S::from_f64(self.tau);
        let mut acc = S::from_f64(0.0);
        for &xi in x {
            let p = xi + tau;
            acc = acc + p * p.ln();
        }
        -acc
    }

    fn lower_bounds(&self) -> Option<Vec<f64>> {
        Some(vec![0.0; self.d])
    }

    fn upper_bounds(&self) -> Option<Vec<f64>> {
        Some(vec![1.0; self.d])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automon_autodiff::{AutoDiffFn, DifferentiableFn};
    use automon_linalg::SymEigen;

    #[test]
    fn kld_of_identical_histograms_is_zero() {
        let f = AutoDiffFn::new(KlDivergence::new(4, 1e-3));
        let x = [0.3, 0.7, 0.3, 0.7];
        assert!(f.eval(&x).abs() < 1e-12);
    }

    #[test]
    fn kld_is_positive_for_different_histograms() {
        let f = AutoDiffFn::new(KlDivergence::new(4, 1e-3));
        assert!(f.eval(&[0.9, 0.1, 0.1, 0.9]) > 0.0);
    }

    #[test]
    fn kld_hessian_is_psd_in_domain() {
        // Joint convexity: the Hessian must be PSD at interior points.
        let f = AutoDiffFn::new(KlDivergence::new(4, 1e-2));
        for x in [
            [0.5, 0.5, 0.5, 0.5],
            [0.2, 0.8, 0.6, 0.4],
            [0.9, 0.1, 0.3, 0.7],
        ] {
            let h = f.hessian(&x);
            let eig = SymEigen::new(&h);
            assert!(
                eig.lambda_min() >= -1e-9,
                "λ_min = {} at {:?}",
                eig.lambda_min(),
                x
            );
        }
    }

    #[test]
    fn kld_is_not_constant_hessian() {
        let f = AutoDiffFn::new(KlDivergence::new(4, 1e-2));
        assert!(!f.has_constant_hessian());
    }

    #[test]
    fn paper_tau_formula() {
        let f = KlDivergence::with_paper_tau(10, 12, 200);
        assert!((f.tau() - 1.0 / 2400.0).abs() < 1e-15);
    }

    #[test]
    fn entropy_peaks_at_uniform() {
        let f = AutoDiffFn::new(Entropy::new(2, 1e-6));
        let uniform = f.eval(&[0.5, 0.5]);
        let skewed = f.eval(&[0.9, 0.1]);
        assert!(uniform > skewed);
        assert!((uniform - 2.0f64.ln()).abs() < 1e-4);
    }

    #[test]
    fn entropy_hessian_is_nsd() {
        let f = AutoDiffFn::new(Entropy::new(3, 1e-3));
        let h = f.hessian(&[0.2, 0.3, 0.5]);
        let eig = SymEigen::new(&h);
        assert!(eig.lambda_max() <= 1e-9);
    }

    #[test]
    fn domains_declared() {
        let f = AutoDiffFn::new(KlDivergence::new(4, 1e-3));
        assert_eq!(DifferentiableFn::lower_bounds(&f), Some(vec![0.0; 4]));
        assert_eq!(DifferentiableFn::upper_bounds(&f), Some(vec![1.0; 4]));
    }
}
