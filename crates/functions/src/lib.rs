//! The monitored functions used in the AutoMon evaluation (paper §4.2).
//!
//! Every function is written once over the generic AD scalar
//! ([`automon_autodiff::ScalarFn`]) — the library's answer to "hand
//! AutoMon the source code of `f`":
//!
//! * [`InnerProduct`] — `f([u, v]) = ⟨u, v⟩`; constant Hessian, so AutoMon
//!   selects ADCD-E, matching the hand-crafted Convex Bound decomposition
//!   `⟨u,v⟩ = ¼‖u+v‖² - ¼‖u-v‖²` (paper §4.3 proves equivalence).
//! * [`QuadraticForm`] — `f(x) = xᵀQx`; constant Hessian `Q + Qᵀ`.
//! * [`KlDivergence`] — τ-smoothed KL divergence of two histograms packed
//!   into one local vector `[p, q]`; jointly convex, so AutoMon's error
//!   guarantee applies (paper §3.7, §4.2).
//! * [`Entropy`] — τ-smoothed Shannon entropy (concave companion of KLD).
//! * [`MlpFunction`] — any trained [`automon_nn::Mlp`] evaluated
//!   generically; covers both MLP-d (tanh) and the intrusion-detection
//!   DNN (ReLU + sigmoid).
//! * [`Rozenbrock`] — the paper's neighborhood-tuning stress function
//!   (§3.6, §4.5), spelled as in the paper.
//! * [`Sine`] — the Figure 1 illustration function.
//! * [`SaddleQuadratic`] — `f = -x₁² + x₂²`, the §4.6 ablation function.
//! * [`Variance`] — `f([m₁, m₂]) = m₂ - m₁²` over augmented locals
//!   `[x, x²]`, the classic GM variance-monitoring task.

mod extensions;
mod kld;
mod mlp;
mod simple;

pub use extensions::{CosineSimilarity, F2FromSketch, FrequencyMoment, PearsonCorrelation, RegressionSlope};
pub use kld::{Entropy, KlDivergence};
pub use mlp::{mlp_d_target, train_mlp_d, IntrusionDnnSpec, MlpFunction};
pub use simple::{InnerProduct, QuadraticForm, Rozenbrock, SaddleQuadratic, Sine, Variance};
