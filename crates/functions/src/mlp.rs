//! Neural networks as monitored functions.
//!
//! A trained [`Mlp`] becomes a monitored function by evaluating its
//! forward pass *generically over the AD scalar*: the weights are plain
//! constants, only the input vector is differentiated. This is exactly
//! the paper's `f_nn` from §1 — `W₃·tanh(W₂·tanh(W₁·x + b₁) + b₂) + b₃` —
//! generalized to any architecture the `automon-nn` substrate can train.

use automon_autodiff::{Scalar, ScalarFn};
use automon_nn::{train, Activation, Loss, Mlp, TrainOptions};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A trained network evaluated as a scalar monitored function.
///
/// The network must have a single output neuron.
#[derive(Debug, Clone)]
pub struct MlpFunction {
    net: Mlp,
}

impl MlpFunction {
    /// Wrap a trained network.
    ///
    /// # Panics
    /// Panics when the network has more than one output.
    pub fn new(net: Mlp) -> Self {
        assert_eq!(net.out_dim(), 1, "MlpFunction: need a single output");
        Self { net }
    }

    /// The wrapped network.
    pub fn net(&self) -> &Mlp {
        &self.net
    }
}

impl ScalarFn for MlpFunction {
    fn dim(&self) -> usize {
        self.net.in_dim()
    }

    fn call<S: Scalar>(&self, x: &[S]) -> S {
        let mut h: Vec<S> = x.to_vec();
        for layer in &self.net.layers {
            let z = automon_autodiff::ops::affine(&layer.w, &layer.b, &h);
            h = z
                .into_iter()
                .map(|v| match layer.act {
                    Activation::Identity => v,
                    Activation::Tanh => v.tanh(),
                    Activation::Relu => v.relu(),
                    Activation::Sigmoid => v.sigmoid(),
                })
                .collect();
        }
        h[0]
    }
}

/// The target the paper trains MLP-d to approximate (§4.2):
/// `x₁ · exp(-1/(d-1) · Σᵢ xᵢ²)`.
pub fn mlp_d_target(x: &[f64]) -> f64 {
    let d = x.len();
    assert!(d >= 2, "mlp_d_target: need d ≥ 2");
    let s: f64 = x.iter().map(|v| v * v).sum();
    x[0] * (-s / (d - 1) as f64).exp()
}

/// Train the paper's MLP-d: a `d`-input network with three tanh hidden
/// layers and an identity output, fitted to [`mlp_d_target`] on inputs
/// covering the evaluation's data range (`x₁ ∈ [-3, 1]`, others around
/// `±2`). Deterministic per seed.
pub fn train_mlp_d(d: usize, seed: u64) -> MlpFunction {
    let hidden = 16.max(d / 2);
    let mut net = Mlp::new(
        &[d, hidden, hidden, hidden, 1],
        &[
            Activation::Tanh,
            Activation::Tanh,
            Activation::Tanh,
            Activation::Identity,
        ],
        seed,
    );
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xD1CE);
    let samples = 1200.min(300 + 20 * d);
    let mut inputs = Vec::with_capacity(samples);
    let mut targets = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut x = vec![0.0; d];
        x[0] = rng.gen_range(-3.0..=1.0);
        for xi in x.iter_mut().skip(1) {
            // Mixture around ±2 like the evaluation data, plus some spread.
            let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            *xi = sign * rng.gen_range(1.0..=3.0);
        }
        targets.push(vec![mlp_d_target(&x)]);
        inputs.push(x);
    }
    let opts = TrainOptions {
        epochs: 60,
        lr: 5e-3,
        batch_size: 32,
        loss: Loss::Mse,
        seed,
        ..Default::default()
    };
    train(&mut net, &inputs, &targets, &opts);
    MlpFunction::new(net)
}

/// Architecture of the intrusion-detection DNN (paper §4.2).
#[derive(Debug, Clone)]
pub struct IntrusionDnnSpec {
    /// Hidden-layer widths (all ReLU); the output is one sigmoid neuron.
    pub hidden: Vec<usize>,
    /// Input feature count (the paper's KDD records have 41).
    pub input: usize,
}

impl IntrusionDnnSpec {
    /// The paper's exact architecture: 512-64-32-16-8 ReLU hidden layers.
    pub fn paper() -> Self {
        Self {
            hidden: vec![512, 64, 32, 16, 8],
            input: 41,
        }
    }

    /// A scaled-down architecture (64-32-16-8-8) with the same depth and
    /// activation structure, for fast experiment turnaround. DESIGN.md
    /// documents this substitution.
    pub fn scaled() -> Self {
        Self {
            hidden: vec![64, 32, 16, 8, 8],
            input: 41,
        }
    }

    /// Build the untrained network for this spec.
    pub fn build(&self, seed: u64) -> Mlp {
        let mut sizes = Vec::with_capacity(self.hidden.len() + 2);
        sizes.push(self.input);
        sizes.extend_from_slice(&self.hidden);
        sizes.push(1);
        let mut acts = vec![Activation::Relu; self.hidden.len()];
        acts.push(Activation::Sigmoid);
        Mlp::new(&sizes, &acts, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automon_autodiff::{finite_diff, AutoDiffFn, DifferentiableFn};

    #[test]
    fn generic_forward_matches_f64_forward() {
        let net = Mlp::new(
            &[3, 5, 1],
            &[Activation::Tanh, Activation::Identity],
            21,
        );
        let expect = net.forward(&[0.1, -0.5, 0.8])[0];
        let f = AutoDiffFn::new(MlpFunction::new(net));
        assert!((f.eval(&[0.1, -0.5, 0.8]) - expect).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let net = Mlp::new(
            &[2, 6, 6, 1],
            &[Activation::Tanh, Activation::Tanh, Activation::Identity],
            33,
        );
        let f = AutoDiffFn::new(MlpFunction::new(net));
        let x = [0.4, -0.9];
        let (_, g) = f.grad(&x);
        let fd = finite_diff::gradient(|y| f.eval(y), &x, 1e-6);
        for (a, b) in g.iter().zip(&fd) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn relu_network_differentiates() {
        let spec = IntrusionDnnSpec {
            hidden: vec![8, 4],
            input: 5,
        };
        let f = AutoDiffFn::new(MlpFunction::new(spec.build(7)));
        let x = [0.3, -0.2, 0.9, 0.0, -1.1];
        let v = f.eval(&x);
        assert!((0.0..=1.0).contains(&v), "sigmoid output {v}");
        let (_, g) = f.grad(&x);
        assert_eq!(g.len(), 5);
        // A non-constant Hessian network must be routed to ADCD-X.
        assert!(!f.has_constant_hessian());
    }

    #[test]
    fn mlp_d_target_shape() {
        assert_eq!(mlp_d_target(&[0.0, 1.0]), 0.0);
        assert!(mlp_d_target(&[1.0, 0.0]) > 0.0);
        assert!(mlp_d_target(&[-1.0, 0.0]) < 0.0);
    }

    #[test]
    fn trained_mlp_2_tracks_target_loosely() {
        let f = train_mlp_d(2, 1);
        let ad = AutoDiffFn::new(f);
        // Average |error| over a grid must beat the trivial zero predictor.
        let mut err = 0.0;
        let mut base = 0.0;
        let mut count = 0;
        for i in 0..10 {
            for j in 0..10 {
                let x = [-3.0 + 0.4 * i as f64, -3.0 + 0.6 * j as f64];
                let t = mlp_d_target(&x);
                err += (ad.eval(&x) - t).abs();
                base += t.abs();
                count += 1;
            }
        }
        assert!(
            err / count as f64 <= base / count as f64,
            "train error {} vs baseline {}",
            err / count as f64,
            base / count as f64
        );
    }

    #[test]
    fn paper_and_scaled_specs() {
        let p = IntrusionDnnSpec::paper();
        assert_eq!(p.hidden, vec![512, 64, 32, 16, 8]);
        assert_eq!(p.input, 41);
        let s = IntrusionDnnSpec::scaled();
        assert_eq!(s.hidden.len(), p.hidden.len());
        let net = s.build(3);
        assert_eq!(net.in_dim(), 41);
        assert_eq!(net.out_dim(), 1);
    }

    #[test]
    #[should_panic(expected = "single output")]
    fn multi_output_rejected() {
        let net = Mlp::new(&[2, 2], &[Activation::Identity], 0);
        MlpFunction::new(net);
    }
}
