//! Closed-form monitored functions from the evaluation.

use automon_autodiff::{Scalar, ScalarFn};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Inner product `f([u, v]) = ⟨u, v⟩` over a packed local vector of even
/// dimension `d` (paper §4.2).
///
/// Its Hessian is the constant block matrix `[[0, I], [I, 0]]`, so AutoMon
/// automatically selects ADCD-E — which the paper shows is equivalent to
/// the hand-crafted Convex Bound decomposition
/// `⟨u,v⟩ = ¼‖u+v‖² - ¼‖u-v‖²`.
#[derive(Debug, Clone, Copy)]
pub struct InnerProduct {
    d: usize,
}

impl InnerProduct {
    /// Inner product over `R^(d/2) × R^(d/2)`.
    ///
    /// # Panics
    /// Panics when `d` is odd or zero.
    pub fn new(d: usize) -> Self {
        assert!(d > 0 && d.is_multiple_of(2), "InnerProduct: dimension must be even");
        Self { d }
    }
}

impl ScalarFn for InnerProduct {
    fn dim(&self) -> usize {
        self.d
    }

    fn call<S: Scalar>(&self, x: &[S]) -> S {
        let half = self.d / 2;
        let mut acc = S::from_f64(0.0);
        for i in 0..half {
            acc = acc + x[i] * x[half + i];
        }
        acc
    }

    fn constant_hessian_hint(&self) -> Option<bool> {
        Some(true)
    }
}

/// Quadratic form `f(x) = xᵀQx` with a fixed matrix `Q` (paper §4.2).
#[derive(Debug, Clone)]
pub struct QuadraticForm {
    /// Row-major `d × d` coefficients.
    q: Vec<f64>,
    d: usize,
}

impl QuadraticForm {
    /// Quadratic form with the given row-major `d × d` matrix.
    ///
    /// # Panics
    /// Panics when `q.len() != d * d`.
    pub fn new(d: usize, q: Vec<f64>) -> Self {
        assert_eq!(q.len(), d * d, "QuadraticForm: wrong matrix size");
        Self { q, d }
    }

    /// The paper's setup: entries drawn from a standard normal.
    pub fn random(d: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        // Box–Muller standard normals.
        let q = (0..d * d)
            .map(|_| {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect();
        Self { q, d }
    }
}

impl ScalarFn for QuadraticForm {
    fn dim(&self) -> usize {
        self.d
    }

    fn call<S: Scalar>(&self, x: &[S]) -> S {
        let mut acc = S::from_f64(0.0);
        for i in 0..self.d {
            for j in 0..self.d {
                let c = self.q[i * self.d + j];
                if c != 0.0 {
                    acc = acc + S::from_f64(c) * x[i] * x[j];
                }
            }
        }
        acc
    }

    fn constant_hessian_hint(&self) -> Option<bool> {
        Some(true)
    }
}

/// The §4.6 ablation function `f(x) = -x₁² + x₂²`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SaddleQuadratic;

impl ScalarFn for SaddleQuadratic {
    fn dim(&self) -> usize {
        2
    }

    fn call<S: Scalar>(&self, x: &[S]) -> S {
        -x[0] * x[0] + x[1] * x[1]
    }

    fn constant_hessian_hint(&self) -> Option<bool> {
        Some(true)
    }
}

/// The Rozenbrock function `f(x) = (1 - x₁)² + 100(x₂ - x₁²)²`
/// (paper §3.6 / §4.5; the paper's spelling is kept).
#[derive(Debug, Clone, Copy, Default)]
pub struct Rozenbrock;

impl ScalarFn for Rozenbrock {
    fn dim(&self) -> usize {
        2
    }

    fn call<S: Scalar>(&self, x: &[S]) -> S {
        let one = S::from_f64(1.0);
        let hundred = S::from_f64(100.0);
        (one - x[0]) * (one - x[0]) + hundred * (x[1] - x[0] * x[0]) * (x[1] - x[0] * x[0])
    }
}

/// `f(x) = sin(x)`, the Figure 1 illustration.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sine;

impl ScalarFn for Sine {
    fn dim(&self) -> usize {
        1
    }

    fn call<S: Scalar>(&self, x: &[S]) -> S {
        x[0].sin()
    }
}

/// Variance over augmented local vectors `[mean(x), mean(x²)]`:
/// `f([m₁, m₂]) = m₂ - m₁²` (the classic GM task; constant Hessian).
#[derive(Debug, Clone, Copy, Default)]
pub struct Variance;

impl ScalarFn for Variance {
    fn dim(&self) -> usize {
        2
    }

    fn call<S: Scalar>(&self, x: &[S]) -> S {
        x[1] - x[0] * x[0]
    }

    fn constant_hessian_hint(&self) -> Option<bool> {
        Some(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automon_autodiff::AutoDiffFn;

    #[test]
    fn inner_product_value_and_hessian() {
        let f = AutoDiffFn::new(InnerProduct::new(4));
        assert_eq!(f.eval(&[1.0, 2.0, 3.0, 4.0]), 1.0 * 3.0 + 2.0 * 4.0);
        let h = f.hessian(&[0.5; 4]);
        // H = [[0, I], [I, 0]].
        assert_eq!(h[(0, 2)], 1.0);
        assert_eq!(h[(1, 3)], 1.0);
        assert_eq!(h[(0, 1)], 0.0);
        assert_eq!(h[(0, 0)], 0.0);
    }

    #[test]
    fn quadratic_form_matches_matrix_math() {
        let q = QuadraticForm::new(2, vec![1.0, 2.0, 0.0, 3.0]);
        let f = AutoDiffFn::new(q);
        // f = x₁² + 2x₁x₂ + 3x₂² at (1, 2): 1 + 4 + 12 = 17.
        assert_eq!(f.eval(&[1.0, 2.0]), 17.0);
        // Hessian is Q + Qᵀ.
        let h = f.hessian(&[0.3, -0.4]);
        assert_eq!(h[(0, 0)], 2.0);
        assert_eq!(h[(0, 1)], 2.0);
        assert_eq!(h[(1, 1)], 6.0);
    }

    #[test]
    fn random_quadratic_is_deterministic_per_seed() {
        let a = QuadraticForm::random(3, 5);
        let b = QuadraticForm::random(3, 5);
        let f = AutoDiffFn::new(a);
        let g = AutoDiffFn::new(b);
        assert_eq!(f.eval(&[1.0, 2.0, 3.0]), g.eval(&[1.0, 2.0, 3.0]));
    }

    #[test]
    fn saddle_and_variance() {
        let f = AutoDiffFn::new(SaddleQuadratic);
        assert_eq!(f.eval(&[2.0, 3.0]), -4.0 + 9.0);
        let v = AutoDiffFn::new(Variance);
        // var of {1, 3}: m₁ = 2, m₂ = 5 → 5 - 4 = 1.
        assert_eq!(v.eval(&[2.0, 5.0]), 1.0);
    }

    #[test]
    fn rozenbrock_minimum() {
        let f = AutoDiffFn::new(Rozenbrock);
        assert_eq!(f.eval(&[1.0, 1.0]), 0.0);
        let (_, g) = f.grad(&[1.0, 1.0]);
        assert_eq!(g, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "dimension must be even")]
    fn odd_inner_product_rejected() {
        InnerProduct::new(5);
    }
}
