//! End-to-end tests of AutoMon's correctness guarantees (paper §3.7).
//!
//! For constant-Hessian functions (ADCD-E) and convex functions (ADCD-X
//! with λ⁻ = 0), the decomposition is a *true* DC decomposition, so the
//! reported approximation must never exceed ε. These tests drive full
//! monitoring runs and assert exactly that.

use automon::data::synthetic::QuadraticDataset;
use automon::data::windowed_mean_series;
use automon::prelude::*;
use automon::sim::Workload;
use std::sync::Arc;

fn run(f: Arc<dyn MonitoredFunction>, series: &[Vec<Vec<f64>>], eps: f64) -> RunStats {
    let cfg = MonitorConfig::builder(eps).build();
    Simulation::new(f, cfg).run(&Workload::from_dense(series))
}

#[test]
fn inner_product_never_exceeds_epsilon() {
    // Constant Hessian ⇒ ADCD-E ⇒ deterministic guarantee, per §3.7.
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(InnerProduct::new(6)));
    let series: Vec<Vec<Vec<f64>>> = (0..5)
        .map(|i| {
            (0..300)
                .map(|t| {
                    let a = (t as f64 / 40.0 + i as f64).sin() * 0.5 + 1.0;
                    vec![a, a * 0.5, -a, 1.0, 0.7, a * 0.3]
                })
                .collect()
        })
        .collect();
    for eps in [0.1, 0.5, 1.0] {
        let stats = run(f.clone(), &series, eps);
        assert!(
            stats.max_error <= eps + 1e-9,
            "ε = {eps}: max error {} with {} messages",
            stats.max_error,
            stats.messages
        );
        assert_eq!(stats.missed_violation_rounds, 0, "ε = {eps}");
        assert_eq!(stats.faulty_reports, 0, "ε = {eps}");
    }
}

#[test]
fn quadratic_form_with_outlier_node_respects_bound() {
    // The paper's Quadratic workload: one node's data swings violently
    // (alternating N(0, 0.1²) and N(-10, 0.1²) blocks). Constant Hessian
    // keeps the deterministic guarantee in force throughout.
    let q = QuadraticForm::random(4, 11);
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(q));
    let raw = QuadraticDataset::generate(4, 300, 4, 5);
    let series = windowed_mean_series(&raw, 10);
    let eps = 0.5;
    let stats = run(f, &series, eps);
    assert!(
        stats.max_error <= eps + 1e-9,
        "max error {} ({} messages)",
        stats.max_error,
        stats.messages
    );
    assert_eq!(stats.missed_violation_rounds, 0);
    // The outlier node must have caused real protocol work.
    assert!(stats.full_syncs + stats.lazy_syncs > 1, "{stats:?}");
}

#[test]
fn convex_kld_respects_bound() {
    // KLD is convex ⇒ λ⁻_min = 0 ⇒ the convex difference is exact even
    // under ADCD-X (paper §3.7's second guarantee class).
    let bins = 4;
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(KlDivergence::new(
        2 * bins,
        1.0 / 800.0,
    )));
    // Drifting histograms, always normalized.
    let series: Vec<Vec<Vec<f64>>> = (0..4)
        .map(|i| {
            (0..250)
                .map(|t| {
                    let w = 0.5 + 0.4 * ((t as f64 / 60.0) + i as f64 * 0.7).sin();
                    let p = vec![w / 2.0, (1.0 - w) / 2.0, w / 4.0, (2.0 - w) / 4.0];
                    let q = vec![0.25; 4];
                    let mut x = p;
                    x.extend(q);
                    x
                })
                .collect()
        })
        .collect();
    for eps in [0.05, 0.2] {
        let stats = run(f.clone(), &series, eps);
        assert!(
            stats.max_error <= eps + 1e-9,
            "ε = {eps}: max error {}",
            stats.max_error
        );
        assert_eq!(stats.missed_violation_rounds, 0);
    }
}

#[test]
fn multiplicative_approximation_respects_relative_bound() {
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(InnerProduct::new(4)));
    let series: Vec<Vec<Vec<f64>>> = (0..3)
        .map(|i| {
            (0..200)
                .map(|t| {
                    let a = 2.0 + (t as f64 / 50.0 + i as f64).sin() * 0.3;
                    vec![a, a, 1.0, 1.0]
                })
                .collect()
        })
        .collect();
    let eps = 0.1;
    let cfg = MonitorConfig::builder(eps).multiplicative().build();
    let stats =
        Simulation::new(f.clone(), cfg).run(&Workload::from_dense(&series));
    // |f(x0) - f(x̄)| ≤ ε·|f(x0)|: check via the recorded maximum against
    // the smallest |f| value on this data (~4), conservatively.
    assert!(stats.max_error <= eps * 6.0, "{stats:?}");
    assert_eq!(stats.missed_violation_rounds, 0);
}

#[test]
fn nonconvex_function_sanity_check_catches_faulty_constraints() {
    // For a non-convex, non-constant-Hessian function monitored with an
    // (intentionally) crippled eigenvalue search, the §3.7 sanity check
    // must convert bad constraints into full syncs rather than silent
    // error: the estimate must still track within a small envelope.
    struct Wavy;
    impl ScalarFn for Wavy {
        fn dim(&self) -> usize {
            2
        }
        fn call<S: automon::prelude::Scalar>(&self, x: &[S]) -> S {
            (x[0] * S::from_f64(2.0)).sin() + x[1] * x[1]
        }
    }
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(Wavy));
    let series: Vec<Vec<Vec<f64>>> = (0..3)
        .map(|i| {
            (0..300)
                .map(|t| {
                    vec![
                        (t as f64 / 30.0) + i as f64 * 0.2,
                        ((t as f64) / 45.0).cos() * 0.5,
                    ]
                })
                .collect()
        })
        .collect();
    let eps = 0.3;
    // Cripple the eigen search: 0 probes beyond the center, no polish.
    let cfg = MonitorConfig::builder(eps)
        .eigen_search(automon::core::EigenSearch {
            probes: 0,
            nm_iters: 0,
            seed: 1,
            ..Default::default()
        })
        .build();
    let stats = Simulation::new(f, cfg).run(&Workload::from_dense(&series));
    // The sanity check turns under-estimated curvature into syncs; the
    // error can transiently exceed ε but must stay near it.
    assert!(
        stats.max_error <= 3.0 * eps,
        "sanity check failed to contain the error: {stats:?}"
    );
}
