//! Cross-crate simulation tests: baselines ordering, communication
//! savings, event-driven workloads, and the CB equivalence (paper §4.3).

use automon::data::intrusion::{IntrusionDataset, IntrusionParams, NODES};
use automon::data::SlidingWindow;
use automon::functions::{IntrusionDnnSpec, MlpFunction};
use automon::prelude::*;
use automon::sim::{run_centralization, run_convex_bound, run_periodic, Workload};
use std::sync::Arc;

fn drift_series(nodes: usize, rounds: usize, d: usize) -> Vec<Vec<Vec<f64>>> {
    (0..nodes)
        .map(|i| {
            (0..rounds)
                .map(|t| {
                    (0..d)
                        .map(|j| {
                            0.5 + 0.3 * ((t as f64 / 80.0) + i as f64 * 0.3 + j as f64).sin()
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

#[test]
fn automon_beats_centralization_on_smooth_drift() {
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(InnerProduct::new(4)));
    let series = drift_series(5, 400, 4);
    let w = Workload::from_dense(&series);
    let stats = Simulation::new(f.clone(), MonitorConfig::builder(0.2).build()).run(&w);
    let central = run_centralization(&f, &w);
    assert!(
        stats.messages < central.messages / 2,
        "AutoMon {} vs centralization {}",
        stats.messages,
        central.messages
    );
    assert!(stats.max_error <= 0.2 + 1e-9);
}

#[test]
fn periodic_message_count_scales_inversely_with_period() {
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(InnerProduct::new(4)));
    let w = Workload::from_dense(&drift_series(3, 200, 4));
    let m: Vec<usize> = [1usize, 5, 25]
        .iter()
        .map(|&p| run_periodic(&f, &w, p).messages)
        .collect();
    assert!(m[0] > m[1] && m[1] > m[2], "{m:?}");
    assert_eq!(m[0], 600);
    // Error grows with period.
    let e: Vec<f64> = [1usize, 25]
        .iter()
        .map(|&p| run_periodic(&f, &w, p).max_error)
        .collect();
    assert!(e[0] <= e[1]);
}

#[test]
fn cb_and_automon_coincide_for_inner_product() {
    // Paper §4.3: AutoMon's ADCD-E decomposition of the inner product is
    // exactly the hand-crafted Convex Bound; the two runs must match in
    // both messages and error.
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(InnerProduct::new(4)));
    let w = Workload::from_dense(&drift_series(4, 300, 4));
    let eps = 0.25;
    let automon = Simulation::new(f.clone(), MonitorConfig::builder(eps).build()).run(&w);
    let cb = run_convex_bound(&f, &w, eps);
    assert_eq!(automon.messages, cb.messages);
    assert_eq!(automon.full_syncs, cb.full_syncs);
    assert!((automon.max_error - cb.max_error).abs() < 1e-12);
}

#[test]
fn event_driven_dnn_workload_runs_end_to_end() {
    // The full intrusion pipeline at reduced scale: generate records,
    // train the DNN, monitor one node update per round.
    let params = IntrusionParams {
        records: 1200,
        attack_fraction: 0.2,
        seed: 3,
    };
    let dataset = IntrusionDataset::generate(&params);
    let (xs, ys) = IntrusionDataset::training_set(&params, 400);
    let spec = IntrusionDnnSpec {
        hidden: vec![16, 8, 8, 4, 4],
        input: 41,
    };
    let mut net = spec.build(1);
    automon::nn::train(
        &mut net,
        &xs,
        &ys,
        &automon::nn::TrainOptions {
            epochs: 3,
            lr: 1e-3,
            loss: automon::nn::Loss::Bce,
            ..Default::default()
        },
    );

    let mut windows: Vec<SlidingWindow> =
        (0..NODES).map(|_| SlidingWindow::new(10, 41)).collect();
    let mut events = Vec::new();
    for (node, rec) in &dataset.events {
        windows[*node].push(rec.features.clone());
        if windows[*node].is_full() {
            events.push((*node, windows[*node].mean().unwrap()));
        }
    }
    let w = Workload::from_events(NODES, &events);
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(MlpFunction::new(net)));
    let eps = 0.05;
    let stats = Simulation::new(f.clone(), MonitorConfig::builder(eps).build()).run(&w);
    let central = run_centralization(&f, &w);
    assert!(stats.messages > 0);
    assert!(
        stats.messages < central.messages,
        "AutoMon {} vs centralization {}",
        stats.messages,
        central.messages
    );
    // No deterministic guarantee for a ReLU DNN, but the error envelope
    // must stay reasonable (paper Fig. 6 shows it stays near the bound).
    assert!(stats.max_error <= 5.0 * eps, "{stats:?}");
}

#[test]
fn ablation_no_adcd_suffers_missed_violations() {
    // The §4.6 ablation: drifting opposed nodes on f = -x₁² + x₂².
    // Without ADCD the local checks pass while the global value escapes —
    // missed violations with unbounded error. With ADCD, error ≤ ε.
    let f: Arc<dyn MonitoredFunction> =
        Arc::new(AutoDiffFn::new(automon::functions::SaddleQuadratic));
    // Seed chosen so the drift trajectory actually crosses the threshold
    // between full syncs (most seeds keep the error marginally under ε
    // either way, which exercises nothing).
    let raw = automon::data::synthetic::SaddleDriftDataset::generate(1000, 16);
    let w = Workload::from_dense(&raw);
    let eps = 0.05;

    let with_adcd =
        Simulation::new(f.clone(), MonitorConfig::builder(eps).build()).run(&w);
    let without_adcd = Simulation::new(
        f.clone(),
        MonitorConfig::builder(eps).without_adcd().build(),
    )
    .run(&w);
    let without_slack = Simulation::new(
        f.clone(),
        MonitorConfig::builder(eps)
            .without_adcd()
            .without_slack()
            .without_lazy_sync()
            .build(),
    )
    .run(&w);

    // ADCD keeps the deterministic bound.
    assert!(with_adcd.max_error <= eps + 1e-9, "{with_adcd:?}");
    assert_eq!(with_adcd.missed_violation_rounds, 0);
    // Without ADCD the non-convex admissible check misses violations and
    // the bound is no longer honored (paper §4.6, Fig. 9 top).
    assert!(
        without_adcd.missed_violation_rounds > 0,
        "expected missed violations without ADCD: {without_adcd:?}"
    );
    assert!(
        without_adcd.max_error > eps,
        "expected the bound to break without ADCD: {without_adcd:?}"
    );
    // Removing slack/lazy sync restores low error by brute force — at a
    // communication cost exceeding centralization (Fig. 9 bottom).
    let centralization_msgs = 4 * w.rounds();
    assert!(
        without_slack.messages > centralization_msgs,
        "no-slack arm should out-message centralization: {} vs {centralization_msgs}",
        without_slack.messages
    );
    assert!(without_slack.max_error <= eps + 1e-9);
    assert!(with_adcd.messages < without_slack.messages / 10);
}
