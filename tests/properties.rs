//! Property-based tests (proptest) for core invariants across crates.

use automon::autodiff::{finite_diff, AutoDiffFn, Scalar, ScalarFn};
use automon::core::{Curvature, DcKind, SafeZone};
use automon::linalg::{Matrix, SymEigen};
use automon::net::wire;
use automon::prelude::*;
use proptest::prelude::*;

/// A random symmetric matrix of size `n` with entries in [-5, 5].
fn sym_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-5.0f64..5.0, n * n).prop_map(move |data| {
        let mut m = Matrix::from_rows(n, n, data);
        m.symmetrize();
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn jacobi_reconstructs_input(m in sym_matrix(4)) {
        let e = SymEigen::new(&m);
        let scale = m.frobenius_norm().max(1.0);
        prop_assert!(e.reconstruct().approx_eq(&m, 1e-8 * scale));
    }

    #[test]
    fn jacobi_eigenvalues_sorted_and_trace_preserved(m in sym_matrix(5)) {
        let e = SymEigen::new(&m);
        for w in e.values.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
        let trace: f64 = (0..5).map(|i| m[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8 * trace.abs().max(1.0));
    }

    #[test]
    fn psd_nsd_split_is_exact_and_signed(m in sym_matrix(4)) {
        let e = SymEigen::new(&m);
        let plus = e.psd_part();
        let minus = e.nsd_part();
        let scale = m.frobenius_norm().max(1.0);
        // H⁺ + H⁻ = H (Lemma 2's foundation).
        prop_assert!(plus.add(&minus).approx_eq(&m, 1e-8 * scale));
        // Signs: H⁺ ⪰ 0 ⪰ H⁻.
        prop_assert!(SymEigen::new(&plus).lambda_min() >= -1e-8 * scale);
        prop_assert!(SymEigen::new(&minus).lambda_max() <= 1e-8 * scale);
    }

    #[test]
    fn ad_gradient_matches_finite_difference(
        coeffs in proptest::collection::vec(-2.0f64..2.0, 6),
        x in proptest::collection::vec(-1.5f64..1.5, 2),
    ) {
        // Random smooth function: polynomial + transcendental mix.
        struct Mix { c: Vec<f64> }
        impl ScalarFn for Mix {
            fn dim(&self) -> usize { 2 }
            fn call<S: Scalar>(&self, x: &[S]) -> S {
                let c: Vec<S> = self.c.iter().map(|&v| S::from_f64(v)).collect();
                c[0] * x[0] + c[1] * x[1]
                    + c[2] * x[0] * x[1]
                    + c[3] * x[0] * x[0]
                    + c[4] * x[0].sin()
                    + c[5] * (x[1] * S::from_f64(0.5)).exp()
            }
        }
        let f = AutoDiffFn::new(Mix { c: coeffs });
        let (_, g) = f.grad(&x);
        let fd = finite_diff::gradient(|y| f.eval(y), &x, 1e-6);
        for (a, b) in g.iter().zip(&fd) {
            prop_assert!((a - b).abs() < 1e-4 * (1.0 + b.abs()), "{a} vs {b}");
        }
        // Hessian symmetry and finite-difference agreement.
        let h = f.hessian(&x);
        prop_assert!(h.is_symmetric(1e-12));
        let hfd = finite_diff::hessian(|y| f.eval(y), &x, 1e-4);
        prop_assert!(h.approx_eq(&hfd, 1e-3 * (1.0 + hfd.frobenius_norm())));
    }

    #[test]
    fn hvp_equals_hessian_product(
        x in proptest::collection::vec(-1.0f64..1.0, 3),
        v in proptest::collection::vec(-1.0f64..1.0, 3),
    ) {
        struct Poly3;
        impl ScalarFn for Poly3 {
            fn dim(&self) -> usize { 3 }
            fn call<S: Scalar>(&self, x: &[S]) -> S {
                x[0] * x[0] * x[1] + x[1] * x[2].sin() + x[2] * x[2] * x[2]
            }
        }
        let f = AutoDiffFn::new(Poly3);
        let h = f.hessian(&x);
        let hv = f.hvp(&x, &v);
        let expected = h.matvec(&v);
        for (a, b) in hv.iter().zip(&expected) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn wire_round_trip_node_messages(
        node in 0usize..64,
        kind in 0u8..4,
        vector in proptest::collection::vec(-1e6f64..1e6, 0..32),
        epoch in 0u64..=u64::MAX,
    ) {
        let kind = match kind {
            0 => ViolationKind::Uninitialized,
            1 => ViolationKind::Neighborhood,
            2 => ViolationKind::SafeZone,
            _ => ViolationKind::FaultyConstraints,
        };
        let msg = NodeMessage::Violation { node, kind, local_vector: vector, epoch };
        let bytes = wire::encode_node_message(&msg);
        prop_assert_eq!(wire::decode_node_message(&bytes).unwrap(), msg);
    }

    #[test]
    fn wire_round_trip_safe_zones(
        x0 in proptest::collection::vec(-10.0f64..10.0, 1..6),
        f0 in -10.0f64..10.0,
        eps in 0.01f64..2.0,
        c in 0.0f64..5.0,
        with_box in proptest::bool::ANY,
    ) {
        let d = x0.len();
        let zone = SafeZone {
            grad0: x0.iter().map(|v| v * 0.5).collect(),
            neighborhood: with_box.then(|| automon::core::NeighborhoodBox {
                lo: x0.iter().map(|v| v - 1.0).collect(),
                hi: x0.iter().map(|v| v + 1.0).collect(),
            }),
            x0,
            f0,
            l: f0 - eps,
            u: f0 + eps,
            dc: if c > 2.5 { DcKind::ConcaveDiff } else { DcKind::ConvexDiff },
            curvature: Curvature::Scalar(c),
        };
        let msg = automon::core::CoordinatorMessage::NewConstraints {
            zone,
            slack: vec![0.25; d],
            epoch: 3,
        };
        let bytes = wire::encode_coordinator_message(&msg);
        prop_assert_eq!(wire::decode_coordinator_message(&bytes).unwrap(), msg);
    }

    #[test]
    fn safe_zone_subset_of_admissible_for_true_decomposition(
        q_entries in proptest::collection::vec(-2.0f64..2.0, 4),
        probe in proptest::collection::vec(-2.0f64..2.0, 2),
        eps in 0.1f64..1.0,
    ) {
        // Quadratic form: ADCD-E is exact, so every safe-zone point must
        // be admissible (the §3.3 convexity/correctness property).
        let f = AutoDiffFn::new(QuadraticForm::new(2, q_entries));
        let x0 = vec![0.2, -0.1];
        let h = f.hessian(&x0);
        let e = SymEigen::new(&h);
        let (f0, grad0) = f.grad(&x0);
        let zone = SafeZone {
            x0: x0.clone(),
            f0,
            grad0,
            l: f0 - eps,
            u: f0 + eps,
            dc: DcKind::ConvexDiff,
            curvature: Curvature::Quadratic(e.nsd_part().scale(-1.0)),
            neighborhood: None,
        };
        if zone.check(&f, &probe).is_none() {
            let v = f.eval(&probe);
            prop_assert!(zone.admissible(v), "point {probe:?} in zone but f = {v} outside [{}, {}]", zone.l, zone.u);
        }
    }

    #[test]
    fn safe_zone_is_convex_midpoints(
        q_entries in proptest::collection::vec(-2.0f64..2.0, 4),
        a in proptest::collection::vec(-2.0f64..2.0, 2),
        b in proptest::collection::vec(-2.0f64..2.0, 2),
    ) {
        let f = AutoDiffFn::new(QuadraticForm::new(2, q_entries));
        let x0 = vec![0.0, 0.0];
        let h = f.hessian(&x0);
        let e = SymEigen::new(&h);
        let (f0, grad0) = f.grad(&x0);
        let zone = SafeZone {
            x0,
            f0,
            grad0,
            l: f0 - 0.5,
            u: f0 + 0.5,
            dc: DcKind::ConvexDiff,
            curvature: Curvature::Quadratic(e.nsd_part().scale(-1.0)),
            neighborhood: None,
        };
        if zone.check(&f, &a).is_none() && zone.check(&f, &b).is_none() {
            let mid: Vec<f64> = a.iter().zip(&b).map(|(x, y)| 0.5 * (x + y)).collect();
            prop_assert!(zone.check(&f, &mid).is_none(),
                "midpoint of two safe points escaped the safe zone");
        }
    }

    #[test]
    fn sliding_window_mean_matches_direct(
        samples in proptest::collection::vec(
            proptest::collection::vec(-100.0f64..100.0, 3), 1..40),
        cap in 1usize..10,
    ) {
        let mut w = automon::data::SlidingWindow::new(cap, 3);
        for s in &samples {
            w.push(s.clone());
        }
        let tail: Vec<&Vec<f64>> = samples.iter().rev().take(cap).collect();
        let mean = w.mean().unwrap();
        for j in 0..3 {
            let direct: f64 = tail.iter().map(|s| s[j]).sum::<f64>() / tail.len() as f64;
            prop_assert!((mean[j] - direct).abs() < 1e-9 * (1.0 + direct.abs()));
        }
    }

    #[test]
    fn curvature_penalty_nonnegative_for_psd(
        m in sym_matrix(3),
        delta in proptest::collection::vec(-3.0f64..3.0, 3),
    ) {
        // The PSD part of any symmetric matrix yields a nonnegative
        // penalty — the property that makes ǧ/ĝ convex/concave.
        let e = SymEigen::new(&m);
        let q = Curvature::Quadratic(e.psd_part());
        prop_assert!(q.eval(&delta) >= -1e-9);
        let qneg = Curvature::Quadratic(e.nsd_part().scale(-1.0));
        prop_assert!(qneg.eval(&delta) >= -1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Delta codec round trip against arbitrary previous/current pairs.
    #[test]
    fn delta_codec_round_trips(
        prev in proptest::collection::vec(-1e3f64..1e3, 1..24),
        mask in proptest::collection::vec(proptest::bool::ANY, 1..24),
        delta_vals in proptest::collection::vec(-10.0f64..10.0, 1..24),
    ) {
        let d = prev.len().min(mask.len()).min(delta_vals.len());
        let prev = &prev[..d];
        let cur: Vec<f64> = (0..d)
            .map(|i| if mask[i] { prev[i] + delta_vals[i] } else { prev[i] })
            .collect();
        let frame = automon::net::delta::encode_delta(prev, &cur, 1e-12);
        let decoded = automon::net::delta::decode_delta(prev, &frame).unwrap();
        for (a, b) in decoded.iter().zip(&cur) {
            prop_assert!((a - b).abs() <= 1e-12, "{a} vs {b}");
        }
        // The frame never exceeds dense size plus the tag/len header.
        prop_assert!(frame.len() <= 5 + d * 12);
    }

    /// Gershgorin bounds bracket the Jacobi spectrum on random symmetric
    /// matrices (the §6 extension's soundness property, end to end).
    #[test]
    fn monitoring_survives_duplicate_and_constant_updates(
        value in -5.0f64..5.0,
        repeats in 2usize..30,
    ) {
        // Degenerate stream: every node sends the same constant vector
        // over and over — exactly one full sync, zero violations.
        let f: std::sync::Arc<dyn MonitoredFunction> =
            std::sync::Arc::new(AutoDiffFn::new(QuadraticForm::new(2, vec![1.0, 0.0, 0.0, 1.0])));
        let series: Vec<Vec<Vec<f64>>> =
            (0..3).map(|_| vec![vec![value, -value]; repeats]).collect();
        let w = automon::sim::Workload::from_dense(&series);
        let stats = Simulation::new(f, MonitorConfig::builder(0.5).build()).run(&w);
        prop_assert_eq!(stats.full_syncs, 1);
        prop_assert_eq!(stats.messages, 6); // 3 registrations + 3 installs
        prop_assert_eq!(stats.max_error, 0.0);
    }
}
