//! Integration tests for the §5/§6 extension features: sketch
//! monitoring, augmented-vector regression, Gershgorin bounds, and the
//! hybrid Periodic fallback.

use automon::data::regression::{drifting_slope_streams, moment_series};
use automon::data::sketch::AmsSketch;
use automon::functions::{F2FromSketch, RegressionSlope};
use automon::prelude::*;
use automon::sim::{run_centralization, run_hybrid, HybridConfig, Workload};
use std::sync::Arc;

#[test]
fn sketched_f2_monitoring_respects_multiplicative_bound() {
    // Windowed AMS sketches per node; F₂ query is a quadratic form ⇒
    // ADCD-E ⇒ deterministic guarantee on the sketch estimate.
    let n = 4;
    let width = 16;
    let seed = 0x51;
    let mut sketches: Vec<AmsSketch> = (0..n).map(|_| AmsSketch::new(width, seed)).collect();
    let mut windows: Vec<std::collections::VecDeque<u64>> =
        (0..n).map(|_| std::collections::VecDeque::new()).collect();
    let mut series: Vec<Vec<Vec<f64>>> = vec![Vec::new(); n];
    for t in 0..600usize {
        for (i, sk) in sketches.iter_mut().enumerate() {
            let item = ((t / 150) + (t * 7 + i * 13) % 5) as u64;
            sk.update(item, 1.0);
            windows[i].push_back(item);
            if windows[i].len() > 50 {
                let old = windows[i].pop_front().unwrap();
                sk.update(old, -1.0);
            }
            if windows[i].len() == 50 {
                series[i].push(sk.vector().to_vec());
            }
        }
    }
    let w = Workload::from_dense(&series);
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(F2FromSketch::new(width)));
    let eps = 0.15;
    let cfg = MonitorConfig::builder(eps).multiplicative().build();
    let stats = Simulation::new(f.clone(), cfg).run(&w);
    assert_eq!(stats.missed_violation_rounds, 0, "{stats:?}");
    assert!(stats.messages < run_centralization(&f, &w).messages);
}

#[test]
fn regression_slope_monitoring_tracks_drift() {
    // Augmented moment vectors (paper §6's rewriting direction): the
    // slope is a non-convex function of the averaged moments; ADCD-X
    // with the sanity check must keep the estimate near the truth.
    let streams = drifting_slope_streams(5, 800, 0x9);
    let series = moment_series(&streams, 100);
    let w = Workload::from_dense(&series);
    let f: Arc<dyn MonitoredFunction> =
        Arc::new(AutoDiffFn::new(RegressionSlope::default()));
    let eps = 0.1;
    // The slope's curvature explodes near the ridge-regularized
    // denominator, so the neighborhood size matters enormously here —
    // run Algorithm 2 on a prefix exactly as the paper prescribes.
    let sim = Simulation::new(f.clone(), MonitorConfig::builder(eps).build());
    let r = sim.tune_r(&w.prefix(150));
    let stats = sim.run_with_r(&w, Some(r));
    // The slope drifts from ~1.0 to ~1.8; the monitor must track it
    // within a small multiple of ε (no guarantee class, sanity-checked).
    assert!(stats.max_error <= 3.0 * eps, "{stats:?}");
    assert!(stats.full_syncs >= 2, "drift must force re-syncs: {stats:?}");
    let central = run_centralization(&f, &w);
    assert!(stats.messages < central.messages, "{stats:?}");
}

#[test]
fn gershgorin_monitoring_is_correct_and_more_conservative() {
    // Same workload under exact vs Gershgorin eigen bounds: both must
    // honor the convexity guarantee (KLD); Gershgorin may not use fewer
    // messages (its penalties are wider).
    let bins = 3;
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(KlDivergence::new(
        2 * bins,
        1e-2,
    )));
    let series: Vec<Vec<Vec<f64>>> = (0..3)
        .map(|i| {
            (0..200)
                .map(|t| {
                    let wgt = 0.4 + 0.3 * ((t as f64 / 40.0) + i as f64).sin();
                    vec![
                        wgt / 2.0,
                        (1.0 - wgt) / 2.0,
                        0.5,
                        1.0 / 3.0,
                        1.0 / 3.0,
                        1.0 / 3.0,
                    ]
                })
                .collect()
        })
        .collect();
    let w = Workload::from_dense(&series);
    let eps = 0.1;
    let exact =
        Simulation::new(f.clone(), MonitorConfig::builder(eps).build()).run(&w);
    let gersh = Simulation::new(
        f.clone(),
        MonitorConfig::builder(eps).gershgorin_bounds().build(),
    )
    .run(&w);
    assert!(exact.max_error <= eps + 1e-9);
    assert!(gersh.max_error <= eps + 1e-9);
    assert!(
        gersh.messages + 50 >= exact.messages,
        "Gershgorin should not be dramatically cheaper in messages: {} vs {}",
        gersh.messages,
        exact.messages
    );
}

#[test]
fn hybrid_caps_communication_under_thrashing() {
    // Violent quadratic data with a tight bound: the hybrid must fall
    // back at least once and spend fewer messages than plain AutoMon.
    let raw = automon::data::synthetic::QuadraticDataset::generate(4, 400, 6, 0xAB);
    let series = automon::data::windowed_mean_series(&raw, 5);
    let w = Workload::from_dense(&series);
    let f: Arc<dyn MonitoredFunction> =
        Arc::new(AutoDiffFn::new(QuadraticForm::random(6, 3)));
    let eps = 0.01;
    let plain =
        Simulation::new(f.clone(), MonitorConfig::builder(eps).build()).run(&w);
    let hybrid = run_hybrid(
        &f,
        &w,
        MonitorConfig::builder(eps).build(),
        HybridConfig {
            switch_threshold: 0.6,
            rate_window: 15,
            period: 1,
            cooldown: 80,
        },
    );
    assert!(hybrid.fallbacks >= 1, "{hybrid:?}");
    assert!(
        hybrid.run.messages < plain.messages,
        "hybrid {} vs plain {}",
        hybrid.run.messages,
        plain.messages
    );
    // With period-1 fallback the estimate stays exact during fallback.
    assert!(hybrid.run.max_error <= plain.max_error + eps, "{hybrid:?}");
}

#[test]
fn cosine_similarity_monitoring_end_to_end() {
    // Two vector populations rotating relative to each other: cosine
    // similarity drifts from ~1 toward ~0.5; AutoMon must track it.
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(
        automon::functions::CosineSimilarity::new(4, 1e-6),
    ));
    let series: Vec<Vec<Vec<f64>>> = (0..4)
        .map(|i| {
            (0..300)
                .map(|t| {
                    let theta = t as f64 / 300.0 + i as f64 * 0.01;
                    vec![1.0, 0.0, theta.cos(), theta.sin()]
                })
                .collect()
        })
        .collect();
    let w = Workload::from_dense(&series);
    let eps = 0.1;
    let sim = Simulation::new(f.clone(), MonitorConfig::builder(eps).build());
    let r = sim.tune_r(&w.prefix(60));
    let stats = sim.run_with_r(&w, Some(r));
    assert!(stats.max_error <= 3.0 * eps, "{stats:?}");
    assert!(
        stats.messages < run_centralization(&f, &w).messages,
        "{stats:?}"
    );
}

#[test]
fn pearson_correlation_monitoring_end_to_end() {
    // Moment vectors whose correlation decays from ~1 to ~0.
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(
        automon::functions::PearsonCorrelation::default(),
    ));
    let series: Vec<Vec<Vec<f64>>> = (0..3)
        .map(|i| {
            (0..300)
                .map(|t| {
                    // var x = var y = 1; cov decays linearly.
                    let rho: f64 = 1.0 - t as f64 / 300.0 + i as f64 * 1e-3;
                    vec![0.0, 0.0, 1.0, 1.0, rho.clamp(-1.0, 1.0)]
                })
                .collect()
        })
        .collect();
    let w = Workload::from_dense(&series);
    let eps = 0.1;
    let sim = Simulation::new(f.clone(), MonitorConfig::builder(eps).build());
    let r = sim.tune_r(&w.prefix(60));
    let stats = sim.run_with_r(&w, Some(r));
    assert!(stats.max_error <= 3.0 * eps, "{stats:?}");
    assert!(stats.full_syncs >= 2, "the drift must force re-syncs: {stats:?}");
}
