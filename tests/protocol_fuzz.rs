//! Property-based fuzzing of the full protocol: random workloads,
//! random shapes and bounds — the invariants must hold on every one.

use automon::prelude::*;
use automon::sim::Workload;
use proptest::prelude::*;
use std::sync::Arc;

/// Random dense per-node series: bounded values, arbitrary drift.
fn series_strategy(
    nodes: usize,
    dim: usize,
    rounds: usize,
) -> impl Strategy<Value = Vec<Vec<Vec<f64>>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            proptest::collection::vec(-2.0f64..2.0, dim),
            rounds,
        ),
        nodes,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The §3.7 guarantee under fuzzing: for a constant-Hessian function
    /// the reported error NEVER exceeds ε, whatever the data does.
    #[test]
    fn constant_hessian_guarantee_is_unbreakable(
        series in series_strategy(3, 4, 25),
        eps in 0.05f64..1.0,
    ) {
        let f: Arc<dyn MonitoredFunction> =
            Arc::new(AutoDiffFn::new(InnerProduct::new(4)));
        let w = Workload::from_dense(&series);
        let stats = Simulation::new(f, MonitorConfig::builder(eps).build()).run(&w);
        prop_assert!(
            stats.max_error <= eps + 1e-9,
            "ε = {eps}, error = {}",
            stats.max_error
        );
        prop_assert_eq!(stats.missed_violation_rounds, 0);
    }

    /// Liveness under fuzzing: every run terminates with a bounded
    /// number of messages (no infinite resolution loops), and the
    /// coordinator ends initialized.
    #[test]
    fn protocol_always_quiesces(
        series in series_strategy(4, 2, 20),
        eps in 0.01f64..0.5,
    ) {
        let f: Arc<dyn MonitoredFunction> =
            Arc::new(AutoDiffFn::new(automon::functions::Variance));
        let w = Workload::from_dense(&series);
        let stats = Simulation::new(f, MonitorConfig::builder(eps).build()).run(&w);
        // Worst case per update: violation + (n-1) pulls + (n-1) replies
        // + n constraint installs ≈ 3n + 2 messages; 80 updates total.
        let cap = 20 * 4 * (3 * 4 + 2);
        prop_assert!(stats.messages <= cap, "messages = {}", stats.messages);
        prop_assert!(stats.full_syncs >= 1);
    }

    /// Determinism: identical inputs produce identical runs (the whole
    /// stack is seeded — a reproduction requirement).
    #[test]
    fn runs_are_deterministic(series in series_strategy(3, 4, 15)) {
        let f: Arc<dyn MonitoredFunction> =
            Arc::new(AutoDiffFn::new(InnerProduct::new(4)));
        let w = Workload::from_dense(&series);
        let a = Simulation::new(f.clone(), MonitorConfig::builder(0.3).build()).run(&w);
        let b = Simulation::new(f, MonitorConfig::builder(0.3).build()).run(&w);
        prop_assert_eq!(a.messages, b.messages);
        prop_assert_eq!(a.max_error, b.max_error);
        prop_assert_eq!(a.full_syncs, b.full_syncs);
        prop_assert_eq!(a.lazy_syncs, b.lazy_syncs);
    }

    /// With slack, the guarantee survives disabling lazy sync: every
    /// violation escalates to a full sync, which re-anchors all checked
    /// points at x0 — correctness is unaffected, only cost.
    ///
    /// (Disabling *slack* itself genuinely loses the guarantee: after a
    /// sync, raw local vectors can sit outside the new zone until their
    /// next update — the transient leak slack exists to close. The
    /// Figure 9 ablation quantifies that arm.)
    #[test]
    fn full_sync_only_variant_also_respects_guarantee(
        series in series_strategy(3, 2, 15),
        eps in 0.05f64..0.5,
    ) {
        let f: Arc<dyn MonitoredFunction> =
            Arc::new(AutoDiffFn::new(automon::functions::Variance));
        let w = Workload::from_dense(&series);
        let cfg = MonitorConfig::builder(eps).without_lazy_sync().build();
        let stats = Simulation::new(f, cfg).run(&w);
        prop_assert!(stats.max_error <= eps + 1e-9, "{}", stats.max_error);
    }
}
