//! # AutoMon
//!
//! A Rust implementation of **AutoMon: Automatic Distributed Monitoring for
//! Arbitrary Multivariate Functions** (Sivan, Gabel, Schuster — SIGMOD 2022).
//!
//! AutoMon continuously approximates an arbitrary function
//! `f : R^d -> R` of the *average* `x̄ = (1/n) Σ xᵢ` of `n` dynamic,
//! distributed local data vectors, to within a user-specified error bound
//! `ε`, while communicating far less than centralizing every update.
//!
//! Given a function written once over a generic scalar type (the Rust
//! equivalent of "hand AutoMon your source code"), the library derives
//! Geometric-Monitoring local constraints automatically via:
//!
//! * automatic differentiation ([`autodiff`]) to evaluate Hessians,
//! * numerical optimization ([`opt`]) to bound extreme Hessian eigenvalues
//!   inside a neighborhood of the reference point (ADCD-X), or a symmetric
//!   eigendecomposition ([`linalg`]) for constant-Hessian functions
//!   (ADCD-E),
//! * the DC-decomposition machinery and the coordinator/node protocol in
//!   [`core`].
//!
//! ## Quickstart
//!
//! ```
//! use automon::prelude::*;
//! use std::sync::Arc;
//!
//! // 1. Write the function once, generically over the AD scalar.
//! struct Norm2;
//! impl ScalarFn for Norm2 {
//!     fn dim(&self) -> usize { 2 }
//!     fn call<S: Scalar>(&self, x: &[S]) -> S { x[0] * x[0] + x[1] * x[1] }
//! }
//!
//! // 2. Build a monitor over 3 nodes with additive error bound 0.1.
//! let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(Norm2));
//! let cfg = MonitorConfig::builder(0.1).build();
//! let mut coord = Coordinator::new(f.clone(), 3, cfg);
//! let mut nodes: Vec<Node> = (0..3).map(|i| Node::new(i, f.clone())).collect();
//!
//! // 3. Drive it: push local vectors and route the resulting messages.
//! for (i, node) in nodes.iter_mut().enumerate() {
//!     if let Some(msg) = node.update_data(vec![0.1 * i as f64, 0.2]) {
//!         let _replies = coord.handle(msg);
//!     }
//! }
//! // (See `examples/quickstart.rs` for the full loop.)
//! ```
//!
//! The runnable examples under `examples/` and the experiment harness in
//! `automon-bench` exercise the full evaluation of the paper.

pub use automon_autodiff as autodiff;
pub use automon_chaos as chaos;
pub use automon_core as core;
pub use automon_data as data;
pub use automon_fleet as fleet;
pub use automon_functions as functions;
pub use automon_linalg as linalg;
pub use automon_net as net;
pub use automon_nn as nn;
pub use automon_opt as opt;
pub use automon_sim as sim;
pub use automon_store as store;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use automon_autodiff::{AutoDiffFn, Dual, Scalar, ScalarFn};
    pub use automon_core::{
        AdcdKind, ApproximationKind, Coordinator, DcKind, Domain, MonitorConfig, MonitoredFunction,
        Node, NodeMessage, SafeZone, ViolationKind,
    };
    pub use automon_data::SlidingWindow;
    pub use automon_fleet::{Fleet, FleetConfig, FleetFaultPlan, ShardMap};
    pub use automon_functions::{InnerProduct, KlDivergence, QuadraticForm, Rozenbrock};
    pub use automon_linalg::{Matrix, SymEigen};
    pub use automon_sim::{Baseline, RunStats, Simulation};
}
