//! Offline stand-in for `criterion`.
//!
//! A calibrated wall-clock timing harness with criterion's bench-file
//! API surface (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_with_input`, `Bencher::iter`). Each benchmark:
//!
//! 1. calibrates an iteration count so one sample takes ≳5 ms,
//! 2. collects `sample_size` samples,
//! 3. reports the median ns/iteration.
//!
//! Besides a human-readable line, every benchmark emits a
//! machine-parseable line:
//!
//! ```text
//! BENCHLINE <group>/<function>/<param> median_ns <float>
//! ```
//!
//! which `scripts/bench_snapshot.sh` scrapes into JSON snapshots.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

const CALIBRATION_TARGET: Duration = Duration::from_millis(5);
const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Override the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            sample_size: self.sample_size,
            name: name.into(),
            _parent: self,
        }
    }

    /// Run one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.sample_size, &mut |b| f(b));
        self
    }
}

/// A named set of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Override the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark a function parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.text);
        run_benchmark(&full, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmark an unparameterized function within the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, &mut |b| f(b));
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// Identifier `function/parameter` for one benchmark in a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Build from a function name and a displayable parameter.
    pub fn new(function: &str, parameter: impl Display) -> Self {
        Self {
            text: format!("{function}/{parameter}"),
        }
    }

    /// Build from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

/// Passed to the benchmark closure; times the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Run the routine `self.iters` times and record the elapsed time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = Some(start.elapsed());
    }
}

/// Calibrate, sample, and report one benchmark.
fn run_benchmark<F>(id: &str, sample_size: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration: grow the iteration count until one sample is slow
    // enough to time reliably.
    let mut iters: u64 = 1;
    loop {
        let elapsed = run_sample(f, iters);
        if elapsed >= CALIBRATION_TARGET || iters >= 1 << 20 {
            break;
        }
        // Aim straight for the target with a 2x cap on growth per step.
        let scale = CALIBRATION_TARGET.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
        iters = (iters as f64 * scale.clamp(1.5, 2.0)).ceil() as u64;
    }

    let mut per_iter_ns: Vec<f64> = (0..sample_size)
        .map(|_| run_sample(f, iters).as_secs_f64() * 1e9 / iters as f64)
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = median_of_sorted(&per_iter_ns);
    let min = per_iter_ns.first().copied().unwrap_or(0.0);
    let max = per_iter_ns.last().copied().unwrap_or(0.0);

    println!(
        "{id:<60} time: [{} {} {}]",
        format_ns(min),
        format_ns(median),
        format_ns(max)
    );
    println!("BENCHLINE {id} median_ns {median:.3}");
}

fn run_sample<F>(f: &mut F, iters: u64) -> Duration
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        iters,
        elapsed: None,
    };
    f(&mut b);
    b.elapsed
        .expect("benchmark closure must call Bencher::iter")
}

fn median_of_sorted(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Bundle benchmark functions into a runner, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running every group (ignores criterion CLI flags).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_formatting() {
        assert_eq!(median_of_sorted(&[1.0, 2.0, 30.0]), 2.0);
        assert_eq!(median_of_sorted(&[1.0, 3.0]), 2.0);
        assert!(format_ns(1500.0).contains("µs"));
    }

    #[test]
    fn harness_times_a_trivial_routine() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }
}
