//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset AutoMon uses: a deterministic [`rngs::SmallRng`]
//! (xoshiro256++ seeded via SplitMix64), the [`SeedableRng`] / [`RngCore`] /
//! [`Rng`] traits with `gen_range` over float and integer ranges,
//! `gen_bool`, and [`seq::SliceRandom::shuffle`]. Streams are deterministic
//! for a given seed but are NOT bit-compatible with upstream `rand`; all
//! in-repo reproducibility claims are relative to this implementation.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that [`Rng::gen_range`] can sample.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer below `span` via widening multiply (no modulo bias to
/// within 2^-64, which is plenty for simulation workloads).
fn below_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; fold it back in.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty f64 range");
        let u = unit_f64(rng.next_u64());
        (lo + u * (hi - lo)).clamp(lo, hi)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(below_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u8, i64, i32);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the reference xoshiro seeding does.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::{Rng, RngCore};

    /// Random-order operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(-3.0f64..=9.0),
                b.gen_range(-3.0f64..=9.0)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let n: usize = rng.gen_range(0..13);
            assert!(n < 13);
            let m: usize = rng.gen_range(3..=5);
            assert!((3..=5).contains(&m));
        }
    }

    #[test]
    fn gen_bool_rates_are_sane() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u32> = (0..64).collect();
        let mut rng = SmallRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "64 elements should not shuffle to identity");
    }
}
