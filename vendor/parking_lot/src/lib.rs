//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API
//! (lock methods return guards directly). Poisoned locks are recovered
//! rather than propagated, matching `parking_lot`'s behavior of not
//! poisoning at all.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(v: T) -> Self {
        Self(sync::Mutex::new(v))
    }

    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(v: T) -> Self {
        Self(sync::RwLock::new(v))
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(3);
        assert_eq!(*rw.read(), 3);
        *rw.write() = 4;
        assert_eq!(*rw.read(), 4);
    }
}
