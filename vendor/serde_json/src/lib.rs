//! Offline stand-in for `serde_json`.
//!
//! Prints and parses compact JSON over the vendored `serde` [`Value`]
//! model. The wire format matches upstream for the constructs the
//! workspace produces (objects, arrays, numbers, strings, null, bool);
//! non-finite floats print as `null`, as upstream does for raw values.

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Self::new(e.to_string())
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse(s)?;
    Ok(T::from_value(&v)?)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's shortest round-trip Display; integral floats
                // print without a fraction, which JSON permits.
                out.push_str(&x.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a complete JSON document into a [`Value`].
fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a straight run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII digits are valid UTF-8");
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(n) = rest.parse::<u64>() {
                    if n == 0 {
                        // JSON `-0` is negative zero; an integer value
                        // cannot carry the sign, so fall through to the
                        // f64 path (round-trips back as `-0`).
                        return Ok(Value::F64(-0.0));
                    }
                    if let Ok(i) = i64::try_from(n) {
                        return Ok(Value::Int(-i));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v = Value::Map(vec![
            ("a".into(), Value::Seq(vec![Value::UInt(1), Value::F64(2.5)])),
            ("b".into(), Value::Null),
            ("s".into(), Value::Str("hi \"there\"\n".into())),
            ("neg".into(), Value::Int(-7)),
            ("t".into(), Value::Bool(true)),
        ]);
        let mut out = String::new();
        write_value(&v, &mut out);
        let back = parse(&out).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![1.0f64, -2.25, 0.0, 1e300];
        let json = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn negative_zero_survives_round_trip() {
        // `-0` must stay a float: losing the sign breaks byte-stable
        // re-encoding of persisted state (the durable store relies on
        // encode(decode(x)) == x).
        let json = to_string(&vec![-0.0f64]).unwrap();
        assert_eq!(json, "[-0]");
        let back: Vec<f64> = from_str(&json).unwrap();
        assert!(back[0].is_sign_negative(), "parsed {:?}", back[0]);
        assert_eq!(to_string(&back).unwrap(), json);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Vec<f64>>("[1, 2").is_err());
        assert!(from_str::<Vec<f64>>("[1] trailing").is_err());
    }
}
