//! Offline stand-in for `proptest`.
//!
//! Covers the subset the workspace uses: the [`proptest!`] macro with
//! `arg in strategy` bindings and an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header, range
//! strategies over floats and integers, [`collection::vec`],
//! [`bool::ANY`], [`Strategy::prop_map`], and the `prop_assert*`
//! macros. No shrinking: a failing case panics with the generated
//! inputs' debug output left to the assertion message. Generation is
//! deterministic per test (seeded from the test's module path + name),
//! so failures reproduce exactly.

use std::ops::{Range, RangeInclusive};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic generator state (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test's fully-qualified name (FNV-1a over the bytes),
    /// so every test gets a stable, distinct stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer below `span` (> 0).
    pub fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range strategy");
        (lo + rng.unit_f64() * (hi - lo)).clamp(lo, hi)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}

impl_int_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestRng};

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform over `{true, false}`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: exact or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values from `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything the tests import with `use proptest::prelude::*`.

    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

/// Assert inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Define property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( @cfg($cfg:expr) ) => {};
    (
        @cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                let _ = __case;
                $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                $body
            }
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (f64, usize)> {
        (0.0f64..1.0).prop_map(|x| (x, (x * 10.0) as usize))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_in_bounds(
            x in -5.0f64..5.0,
            n in 0usize..64,
            v in crate::collection::vec(-1.0f64..1.0, 0..8),
            b in crate::bool::ANY,
        ) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!(n < 64);
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|e| (-1.0..1.0).contains(e)));
            let _ = b;
        }

        #[test]
        fn mapped_strategy_consistent(p in pair()) {
            prop_assert_eq!(p.1, (p.0 * 10.0) as usize);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        let mut c = TestRng::for_test("x::z");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
