//! Offline stand-in for `serde`.
//!
//! Real `serde` is a visitor-based zero-copy framework; this stand-in
//! routes everything through an owned [`Value`] tree instead, which is
//! all the workspace needs (small config/snapshot/message payloads).
//! The derive macros ([`Serialize`]/[`Deserialize`], re-exported from
//! `serde_derive`) generate `to_value`/`from_value` impls whose JSON
//! projection (via the vendored `serde_json`) matches upstream serde's
//! externally-tagged default format, so persisted snapshots stay
//! readable if the real crates ever return.

pub use serde_derive::{Deserialize, Serialize};

/// The serde data model as an owned tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, insertion-ordered.
    Map(Vec<(String, Value)>),
}

/// Shared `Null` for missing-field lookups.
pub const NULL: Value = Value::Null;

impl Value {
    /// Borrow as an object, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as an array, if this is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a field in an object, yielding [`NULL`] when absent so
    /// `Option` fields tolerate missing keys.
    pub fn get_field<'a>(m: &'a [(String, Value)], key: &str) -> &'a Value {
        m.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or(&NULL)
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Free-form error.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        Self {
            msg: format!("expected {what}, found {}", found.kind()),
        }
    }

    /// Wrap with the field/variant being deserialized.
    pub fn in_field(self, ctx: &str) -> Self {
        Self {
            msg: format!("{ctx}: {}", self.msg),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can convert themselves into a [`Value`].
pub trait Serialize {
    /// Build the data-model tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the data-model tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match v {
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range for i64")))?,
                    Value::Int(n) => *n,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    // Non-finite floats serialize to null (JSON has no
                    // NaN/Inf literal); accept the round trip.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let seq = v.as_seq().ok_or_else(|| DeError::expected("array", v))?;
        seq.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_seq() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::expected("2-element array", v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(usize::from_value(&7usize.to_value()), Ok(7));
        assert_eq!(i32::from_value(&(-3i32).to_value()), Ok(-3));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(
            Option::<Vec<f64>>::from_value(&Some(vec![1.0, 2.0]).to_value()),
            Ok(Some(vec![1.0, 2.0]))
        );
        assert_eq!(Option::<f64>::from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn missing_fields_read_as_null() {
        let m = vec![("a".to_string(), Value::UInt(1))];
        assert_eq!(Value::get_field(&m, "b"), &Value::Null);
    }
}
