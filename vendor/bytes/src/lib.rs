//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow API surface it actually uses: `BytesMut` as an
//! append-only build buffer, `Bytes` as a cheaply clonable frozen frame,
//! and the `Buf`/`BufMut` traits with the little-endian accessors the
//! AutoMon wire format relies on. Semantics match the real crate for
//! this subset (including `Buf` advancing a `&[u8]` cursor in place).

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Self {
            data: Arc::new(src.to_vec()),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.as_ref().clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: Arc::new(v) }
    }
}

/// A growable byte buffer for building frames.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::new(self.data),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side accessors (little-endian helpers used by the wire codec).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64` (raw IEEE-754 bits).
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side cursor accessors.
///
/// Implemented for `&[u8]`, advancing the slice in place exactly like the
/// real crate.
///
/// # Panics
/// The `get_*` methods panic when fewer bytes remain than requested;
/// callers check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Read raw bytes into `dst`, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f64` (raw IEEE-754 bits).
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "Buf: advancing past the end");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_little_endian() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0xA7);
        b.put_u32_le(513);
        b.put_f64_le(-2.5);
        let frozen = b.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.remaining(), 13);
        assert_eq!(cur.get_u8(), 0xA7);
        assert_eq!(cur.get_u32_le(), 513);
        assert_eq!(cur.get_f64_le(), -2.5);
        assert_eq!(cur.remaining(), 0);
    }
}
