//! Offline stand-in for `crossbeam`.
//!
//! Provides the two pieces AutoMon uses, backed by the standard library:
//!
//! * [`scope`] — scoped threads with crossbeam's closure signature
//!   (`|scope| … scope.spawn(|_| …)`), implemented over
//!   `std::thread::scope`.
//! * [`channel`] — unbounded channels with clonable senders *and*
//!   receivers, implemented over `std::sync::mpsc` behind a mutex.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Scoped threads (crossbeam-utils `scope`).
///
/// Returns `Err` with the panic payload when the closure or any spawned
/// thread panics, mirroring crossbeam's contract.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

/// Handle passed to the [`scope`] closure; spawns scoped threads.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives the scope again so
    /// nested spawns work, as in crossbeam.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&scope)),
        }
    }
}

/// Handle to a scoped thread spawned via [`Scope::spawn`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread to finish; `Err` carries its panic payload.
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

pub mod channel {
    //! Unbounded channels with clonable endpoints.

    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Error returned by [`Sender::send`] when the channel is closed.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is closed.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// The channel is closed and drained.
        Disconnected,
    }

    /// The sending half; clonable.
    #[derive(Debug, Clone)]
    pub struct Sender<T> {
        tx: mpsc::Sender<T>,
    }

    /// The receiving half; clonable (receivers share one queue).
    #[derive(Debug, Clone)]
    pub struct Receiver<T> {
        rx: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Sender<T> {
        /// Enqueue a message.
        pub fn send(&self, v: T) -> Result<(), SendError<T>> {
            self.tx.send(v).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or the channel closes.
        pub fn recv(&self) -> Result<T, RecvError> {
            let rx = self.rx.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let rx = self.rx.lock().unwrap_or_else(|e| e.into_inner());
            rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { tx },
            Receiver {
                rx: Arc::new(Mutex::new(rx)),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_collects() {
        let data = [1, 2, 3];
        let sum = super::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&v| s.spawn(move |_| v * 2)).collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<i32>()
        })
        .unwrap();
        assert_eq!(sum, 12);
    }

    #[test]
    fn channel_round_trip_across_threads() {
        let (tx, rx) = super::channel::unbounded();
        let t = std::thread::spawn(move || tx.send(41).unwrap());
        assert_eq!(rx.recv(), Ok(41));
        t.join().unwrap();
        assert_eq!(rx.try_recv(), Err(super::channel::TryRecvError::Disconnected));
    }

    #[test]
    fn scope_propagates_panics_as_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
