//! Offline stand-in for `serde_derive`.
//!
//! `syn`/`quote` are unavailable offline, so this parses the item's
//! `TokenStream` by hand — enough for the shapes the workspace uses:
//! non-generic structs with named fields, tuple structs, and enums with
//! unit / tuple / struct variants. Supports the one field attribute in
//! use, `#[serde(skip_serializing_if = "path")]`. Generated impls target
//! the vendored Value-based `serde` traits and mirror upstream serde's
//! externally-tagged JSON layout.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a struct or struct variant.
struct Field {
    name: String,
    skip_serializing_if: Option<String>,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Tuple variant with this many fields.
    Tuple(usize),
    Struct(Vec<Field>),
}

/// The parsed item.
enum Item {
    Struct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

/// Extract `skip_serializing_if = "path"` from a `#[serde(...)]` attr
/// group's inner stream, if present.
fn serde_attr_skip(tokens: &[TokenTree]) -> Option<String> {
    // Expect: serde ( ... ) — find the paren group after the `serde` ident.
    let mut it = tokens.iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            g.stream().into_iter().collect::<Vec<_>>()
        }
        _ => return None,
    };
    let mut j = 0;
    while j < inner.len() {
        if let TokenTree::Ident(id) = &inner[j] {
            if id.to_string() == "skip_serializing_if" {
                // skip `=`, take the string literal
                if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                    (inner.get(j + 1), inner.get(j + 2))
                {
                    if eq.as_char() == '=' {
                        let s = lit.to_string();
                        return Some(s.trim_matches('"').to_string());
                    }
                }
            }
        }
        j += 1;
    }
    None
}

/// Skip a run of outer attributes starting at `i`, returning the new
/// index and any `skip_serializing_if` path found among them.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, Option<String>) {
    let mut skip = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    if skip.is_none() {
                        skip = serde_attr_skip(&inner);
                    }
                    i += 2;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    (i, skip)
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, …) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Advance past a type (or discriminant expression) until a top-level
/// comma, tracking `<`/`>` nesting. Returns the index of the comma (or
/// `tokens.len()`).
fn skip_to_top_level_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle: i32 = 0;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Parse the named fields inside a brace group.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (j, skip) = skip_attrs(&tokens, i);
        let j = skip_vis(&tokens, j);
        let name = match tokens.get(j) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(t) => panic!("serde derive: expected field name, got `{t}`"),
        };
        // tokens[j+1] must be `:`; then the type runs to the next
        // top-level comma.
        let after_colon = j + 2;
        let comma = skip_to_top_level_comma(&tokens, after_colon);
        fields.push(Field {
            name,
            skip_serializing_if: skip,
        });
        i = comma + 1;
    }
    fields
}

/// Count the fields of a tuple struct/variant from its paren group.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        let comma = skip_to_top_level_comma(&tokens, i);
        if comma > i {
            count += 1;
        }
        i = comma + 1;
    }
    count
}

/// Parse the variants inside an enum's brace group.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (j, _) = skip_attrs(&tokens, i);
        let name = match tokens.get(j) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(t) => panic!("serde derive: expected variant name, got `{t}`"),
        };
        let mut k = j + 1;
        let kind = match tokens.get(k) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                k += 1;
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                k += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip a possible `= discriminant` and find the trailing comma.
        let comma = skip_to_top_level_comma(&tokens, k);
        variants.push(Variant { name, kind });
        i = comma + 1;
    }
    variants
}

/// Parse the whole derive input item.
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (i, _) = skip_attrs(&tokens, 0);
    let i = skip_vis(&tokens, i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected struct/enum, got {other:?}"),
    };
    let name = match tokens.get(i + 1) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.get(i + 2) {
        if p.as_char() == '<' {
            panic!("serde derive (vendored): generic types are not supported");
        }
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i + 2) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            _ => Item::UnitStruct { name },
        },
        "enum" => match tokens.get(i + 2) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde derive: malformed enum body: {other:?}"),
        },
        other => panic!("serde derive: unsupported item kind `{other}`"),
    }
}

/// Code that serializes the named fields of `self` (or of destructured
/// bindings when `prefix` is empty) into a `Vec<(String, Value)>` named
/// `__m`.
fn gen_fields_to_map(fields: &[Field], access_prefix: &str) -> String {
    let mut out = String::new();
    out.push_str("let mut __m: Vec<(String, ::serde::Value)> = Vec::new();\n");
    for f in fields {
        let access = format!("{}{}", access_prefix, f.name);
        let push = format!(
            "__m.push((\"{name}\".to_string(), ::serde::Serialize::to_value(&{access})));\n",
            name = f.name
        );
        match &f.skip_serializing_if {
            Some(pred) => {
                out.push_str(&format!("if !{pred}(&{access}) {{ {push} }}\n"));
            }
            None => out.push_str(&push),
        }
    }
    out
}

/// Code that rebuilds named fields from a map slice named `__m`.
fn gen_fields_from_map(fields: &[Field], ty_ctx: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{name}: ::serde::Deserialize::from_value(::serde::Value::get_field(__m, \"{name}\"))\
                 .map_err(|e| e.in_field(\"{ctx}.{name}\"))?,\n",
                name = f.name,
                ctx = ty_ctx
            )
        })
        .collect()
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
             {body}\
             ::serde::Value::Map(__m)\n\
             }}\n}}\n",
            body = gen_fields_to_map(fields, "self.")
        ),
        Item::TupleStruct { name, arity } => {
            if *arity == 1 {
                // Newtype structs serialize transparently, as in serde.
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ ::serde::Serialize::to_value(&self.0) }}\n\
                     }}\n"
                )
            } else {
                let elems: String = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                    .collect();
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Seq(vec![{elems}]) }}\n\
                     }}\n"
                )
            }
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}\n"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(__x0) => ::serde::Value::Map(vec![(\
                             \"{vname}\".to_string(), ::serde::Serialize::to_value(__x0))]),\n"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: String =
                                (0..*n).map(|i| format!("__x{i},")).collect();
                            let elems: String = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__x{i}),"))
                                .collect();
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Value::Map(vec![(\
                                 \"{vname}\".to_string(), ::serde::Value::Seq(vec![{elems}]))]),\n"
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds: String =
                                fields.iter().map(|f| format!("{},", f.name)).collect();
                            let body = gen_fields_to_map(fields, "");
                            format!(
                                "{name}::{vname} {{ {binds} }} => {{\n\
                                 {body}\
                                 ::serde::Value::Map(vec![(\"{vname}\".to_string(), ::serde::Value::Map(__m))])\n\
                                 }},\n"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n}}\n"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
             let __m = __v.as_map().ok_or_else(|| ::serde::DeError::expected(\"object for {name}\", __v))?;\n\
             Ok({name} {{\n{body}}})\n\
             }}\n}}\n",
            body = gen_fields_from_map(fields, name)
        ),
        Item::TupleStruct { name, arity } => {
            if *arity == 1 {
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                     Ok({name}(::serde::Deserialize::from_value(__v)?))\n\
                     }}\n}}\n"
                )
            } else {
                let elems: String = (0..*arity)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_value(&__s[{i}])\
                             .map_err(|e| e.in_field(\"{name}.{i}\"))?,"
                        )
                    })
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                     let __s = __v.as_seq().ok_or_else(|| ::serde::DeError::expected(\"array for {name}\", __v))?;\n\
                     if __s.len() != {arity} {{ return Err(::serde::DeError::custom(\"wrong tuple arity for {name}\")); }}\n\
                     Ok({name}({elems}))\n\
                     }}\n}}\n"
                )
            }
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(_: &::serde::Value) -> Result<Self, ::serde::DeError> {{ Ok({name}) }}\n\
             }}\n"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),\n", vn = v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)\
                             .map_err(|e| e.in_field(\"{name}::{vn}\"))?)),\n"
                        )),
                        VariantKind::Tuple(n) => {
                            let elems: String = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(&__s[{i}])\
                                         .map_err(|e| e.in_field(\"{name}::{vn}.{i}\"))?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 let __s = __inner.as_seq().ok_or_else(|| ::serde::DeError::expected(\"array for {name}::{vn}\", __inner))?;\n\
                                 if __s.len() != {n} {{ return Err(::serde::DeError::custom(\"wrong arity for {name}::{vn}\")); }}\n\
                                 Ok({name}::{vn}({elems}))\n\
                                 }}\n"
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let body = gen_fields_from_map(fields, &format!("{name}::{vn}"));
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 let __m = __inner.as_map().ok_or_else(|| ::serde::DeError::expected(\"object for {name}::{vn}\", __inner))?;\n\
                                 Ok({name}::{vn} {{\n{body}}})\n\
                                 }}\n"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => Err(::serde::DeError::custom(format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                 }},\n\
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = (&__entries[0].0, &__entries[0].1);\n\
                 match __tag.as_str() {{\n\
                 {tagged_arms}\
                 __other => Err(::serde::DeError::custom(format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                 }}\n\
                 }}\n\
                 __other => Err(::serde::DeError::expected(\"{name} variant\", __other)),\n\
                 }}\n\
                 }}\n}}\n"
            )
        }
    }
}

/// Derive the Value-based `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde derive: generated Serialize impl must parse")
}

/// Derive the Value-based `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde derive: generated Deserialize impl must parse")
}
