#!/usr/bin/env bash
# Snapshot the ADCD hot-path benches into BENCH_adcd_hotpath.json and
# the telemetry-overhead benches into BENCH_obs_overhead.json.
#
# Runs the node_runtime, coordinator_full_sync, substrates,
# decomp_cache, and store_wal Criterion benches (node/coordinator
# runtime, the autodiff Hessian microbench, the Jacobi eigensolver,
# wire codecs, the decomposition-cache hit/miss/churn paths, and the
# durable store's journal-append and crash-recovery replay) plus
# obs_overhead (bare vs
# disabled-telemetry vs live-telemetry decompose, metric primitives) and
# records every BENCHLINE median, keyed "<group>/<bench>/<dim>" in
# nanoseconds. If a snapshot already exists, its "current" section is
# rotated into "previous", so consecutive runs (and consecutive PRs)
# keep a before/after trajectory.
#
# Measurement protocol: each bench binary runs REPS times (default 3)
# and the snapshot keeps the per-key MINIMUM of the per-run medians.
# Scheduler and cache noise only ever inflate a timing, so min-of-medians
# is the stable lower envelope — the same rule the CI zero-overhead
# smoke uses. The snapshot also records the host kernel and core count,
# since absolute nanoseconds are only comparable on like machines.
#
# The fleet_scaling bench is snapshotted separately into
# BENCH_fleet_scaling.json: it measures message/byte *volume* of the
# two-tier hierarchy against the flat baseline, not wall time. The
# protocol is deterministic, so it runs ONCE and the values (keyed
# "fleet_scaling/<fn>/<case>/<metric>") are exact counts per update —
# the root_over_flat_msgs ratio is the §3.14 sublinearity acceptance
# number (must stay ≤ 0.5 at 10k streams / 32 shards; the bench binary
# asserts this itself).
#
# The net_throughput bench (NETLINE rows, BENCH_net_throughput.json)
# blasts real frames over real sockets: reports/sec and syscalls/report
# for the epoll reactor vs the thread-per-connection transport at 1k
# and 10k connections (DESIGN.md §3.15). The bench takes best-of-2
# internally; the snapshot gate requires the reactor to hold ≥2.5×
# threaded reports/sec and ≥10× fewer syscalls/report at 1k conns —
# regression floors under the 3–4× wall-clock the shared-core container
# typically measures.
#
# Usage: scripts/bench_snapshot.sh
set -euo pipefail
cd "$(dirname "$0")/.."

REPS=${BENCH_SNAPSHOT_REPS:-3}

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

snapshot() {
    local out=$1
    shift
    local benches=("$@")
    for rep in $(seq 1 "$REPS"); do
        for bench in "${benches[@]}"; do
            echo "running $bench (rep $rep/$REPS) ..." >&2
            cargo bench -q -p automon-bench --bench "$bench" 2>&1 \
                | grep '^BENCHLINE' || true
        done
    done > "$RAW"
    BENCH_HOST_UNAME=$(uname -srm) BENCH_HOST_CORES=$(nproc) BENCH_REPS=$REPS \
        python3 - "$RAW" "$out" "${benches[@]}" <<'PYEOF'
import json
import os
import sys
from datetime import datetime, timezone

raw_path, out_path, benches = sys.argv[1], sys.argv[2], sys.argv[3:]

current = {}
with open(raw_path) as fh:
    for line in fh:
        # BENCHLINE <group>/<bench>/<dim> median_ns <float>
        parts = line.split()
        if len(parts) == 4 and parts[0] == "BENCHLINE" and parts[2] == "median_ns":
            key, v = parts[1], float(parts[3])
            current[key] = min(current.get(key, v), v)

if not current:
    sys.exit("bench_snapshot: no BENCHLINE output captured")

previous = None
try:
    with open(out_path) as fh:
        previous = json.load(fh).get("current")
except (FileNotFoundError, json.JSONDecodeError):
    pass

snapshot = {
    "unit": "median_ns",
    "protocol": f"min of {os.environ.get('BENCH_REPS', '3')} per-run medians",
    "captured_at": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
    "host": {
        "uname": os.environ.get("BENCH_HOST_UNAME", "unknown"),
        "cores": int(os.environ.get("BENCH_HOST_CORES", "0")),
    },
    "benches": benches,
    "previous": previous,
    "current": dict(sorted(current.items())),
}
with open(out_path, "w") as fh:
    json.dump(snapshot, fh, indent=2)
    fh.write("\n")
print(f"wrote {out_path}: {len(current)} medians"
      + (" (rotated previous snapshot)" if previous else ""))
PYEOF
}

snapshot BENCH_adcd_hotpath.json node_runtime coordinator_full_sync substrates decomp_cache store_wal
snapshot BENCH_obs_overhead.json obs_overhead

# Fleet scaling: deterministic volume counts, one run, FLEETLINE rows.
echo "running fleet_scaling (volume, 1 rep) ..." >&2
cargo bench -q -p automon-bench --bench fleet_scaling 2>/dev/null \
    | grep '^FLEETLINE' > "$RAW"
BENCH_HOST_UNAME=$(uname -srm) BENCH_HOST_CORES=$(nproc) \
    python3 - "$RAW" BENCH_fleet_scaling.json <<'PYEOF'
import json
import os
import sys
from datetime import datetime, timezone

raw_path, out_path = sys.argv[1], sys.argv[2]

current = {}
with open(raw_path) as fh:
    for line in fh:
        # FLEETLINE fleet_scaling/<fn>/<case>/<metric> value <float>
        parts = line.split()
        if len(parts) == 4 and parts[0] == "FLEETLINE" and parts[2] == "value":
            current[parts[1]] = float(parts[3])

if not current:
    sys.exit("bench_snapshot: no FLEETLINE output captured")

ratios = {k: v for k, v in current.items() if k.endswith("/root_over_flat_msgs")}
over = {k: v for k, v in ratios.items() if v > 0.5}
if over:
    sys.exit(f"bench_snapshot: root tier exceeds 0.5x flat baseline: {over}")

previous = None
try:
    with open(out_path) as fh:
        previous = json.load(fh).get("current")
except (FileNotFoundError, json.JSONDecodeError):
    pass

snapshot = {
    "unit": "per-update counts (msgs/bytes) and absolute errors",
    "protocol": "single deterministic run; root_over_flat_msgs must be <= 0.5",
    "captured_at": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
    "host": {
        "uname": os.environ.get("BENCH_HOST_UNAME", "unknown"),
        "cores": int(os.environ.get("BENCH_HOST_CORES", "0")),
    },
    "benches": ["fleet_scaling"],
    "previous": previous,
    "current": dict(sorted(current.items())),
}
with open(out_path, "w") as fh:
    json.dump(snapshot, fh, indent=2)
    fh.write("\n")
worst = max(ratios.values()) if ratios else float("nan")
print(f"wrote {out_path}: {len(current)} values, worst root/flat ratio {worst:.4f}"
      + (" (rotated previous snapshot)" if previous else ""))
PYEOF

# Net throughput: real-socket blast, NETLINE rows (best-of-2 inside the
# bench binary, so one outer run).
echo "running net_throughput (sockets, 1 rep) ..." >&2
cargo bench -q -p automon-bench --bench net_throughput 2>/dev/null \
    | grep '^NETLINE' > "$RAW"
BENCH_HOST_UNAME=$(uname -srm) BENCH_HOST_CORES=$(nproc) \
    python3 - "$RAW" BENCH_net_throughput.json <<'PYEOF'
import json
import os
import sys
from datetime import datetime, timezone

raw_path, out_path = sys.argv[1], sys.argv[2]

current = {}
with open(raw_path) as fh:
    for line in fh:
        # NETLINE net_throughput/<backend>/<conns>/<metric> value <float>
        parts = line.split()
        if len(parts) == 4 and parts[0] == "NETLINE" and parts[2] == "value":
            current[parts[1]] = float(parts[3])

if not current:
    sys.exit("bench_snapshot: no NETLINE output captured")

speedup = current.get("net_throughput/reactor_over_threaded/conns1000/speedup", 0.0)
syscall_ratio = current.get(
    "net_throughput/reactor_over_threaded/conns1000/syscall_ratio", 0.0
)
if speedup < 2.5:
    sys.exit(f"bench_snapshot: reactor speedup {speedup:.2f}x below 2.5x floor")
if syscall_ratio < 10.0:
    sys.exit(
        f"bench_snapshot: reactor syscall advantage {syscall_ratio:.1f}x below 10x floor"
    )

previous = None
try:
    with open(out_path) as fh:
        previous = json.load(fh).get("current")
except (FileNotFoundError, json.JSONDecodeError):
    pass

snapshot = {
    "unit": "reports/sec, syscalls/report, and ratios",
    "protocol": "best-of-2 socket blasts; speedup >= 2.5 and syscall_ratio >= 10 at 1k conns",
    "captured_at": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
    "host": {
        "uname": os.environ.get("BENCH_HOST_UNAME", "unknown"),
        "cores": int(os.environ.get("BENCH_HOST_CORES", "0")),
    },
    "benches": ["net_throughput"],
    "previous": previous,
    "current": dict(sorted(current.items())),
}
with open(out_path, "w") as fh:
    json.dump(snapshot, fh, indent=2)
    fh.write("\n")
print(
    f"wrote {out_path}: {len(current)} values, "
    f"speedup {speedup:.2f}x, syscall ratio {syscall_ratio:.1f}x"
    + (" (rotated previous snapshot)" if previous else "")
)
PYEOF
