#!/usr/bin/env bash
# Snapshot the ADCD hot-path benches into BENCH_adcd_hotpath.json and
# the telemetry-overhead benches into BENCH_obs_overhead.json.
#
# Runs the node_runtime, coordinator_full_sync, and substrates Criterion
# benches (node/coordinator runtime, the autodiff Hessian microbench,
# the Jacobi eigensolver, wire codecs) plus obs_overhead (bare vs
# disabled-telemetry vs live-telemetry decompose, metric primitives) and
# records every BENCHLINE median, keyed "<group>/<bench>/<dim>" in
# nanoseconds. If a snapshot already exists, its "current" section is
# rotated into "previous", so consecutive runs (and consecutive PRs)
# keep a before/after trajectory.
#
# Usage: scripts/bench_snapshot.sh
set -euo pipefail
cd "$(dirname "$0")/.."

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

snapshot() {
    local out=$1
    shift
    local benches=("$@")
    for bench in "${benches[@]}"; do
        echo "running $bench ..." >&2
        cargo bench -q -p automon-bench --bench "$bench" 2>&1 \
            | grep '^BENCHLINE' || true
    done > "$RAW"
    python3 - "$RAW" "$out" "${benches[@]}" <<'PYEOF'
import json
import sys
from datetime import datetime, timezone

raw_path, out_path, benches = sys.argv[1], sys.argv[2], sys.argv[3:]

current = {}
with open(raw_path) as fh:
    for line in fh:
        # BENCHLINE <group>/<bench>/<dim> median_ns <float>
        parts = line.split()
        if len(parts) == 4 and parts[0] == "BENCHLINE" and parts[2] == "median_ns":
            current[parts[1]] = float(parts[3])

if not current:
    sys.exit("bench_snapshot: no BENCHLINE output captured")

previous = None
try:
    with open(out_path) as fh:
        previous = json.load(fh).get("current")
except (FileNotFoundError, json.JSONDecodeError):
    pass

snapshot = {
    "unit": "median_ns",
    "captured_at": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
    "benches": benches,
    "previous": previous,
    "current": dict(sorted(current.items())),
}
with open(out_path, "w") as fh:
    json.dump(snapshot, fh, indent=2)
    fh.write("\n")
print(f"wrote {out_path}: {len(current)} medians"
      + (" (rotated previous snapshot)" if previous else ""))
PYEOF
}

snapshot BENCH_adcd_hotpath.json node_runtime coordinator_full_sync substrates
snapshot BENCH_obs_overhead.json obs_overhead
