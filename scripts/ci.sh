#!/usr/bin/env bash
# CI gate: everything a PR must pass, in the order a failure is
# cheapest to diagnose. Run from the repository root.
#
#   scripts/ci.sh
#
# Steps:
#   1. release build of the whole workspace
#   2. full test suite
#   3. clippy, warnings denied
#   4. chaos determinism smoke — the same --chaos-seed must produce a
#      byte-identical report (DESIGN.md §3.8); catches any accidental
#      nondeterminism (HashMap iteration, extra RNG draws, time).
#   5. zero-overhead bench smoke — decompose_observed with
#      Telemetry::disabled() must stay within BENCH_SMOKE_TOLERANCE
#      (default 10%) of the bare decompose on the same machine and run
#      (DESIGN.md §3.9's near-no-op contract). Same-run comparison, so
#      machine drift doesn't produce false alarms.
#   6. spectral parity smoke — Jacobi, QL, and Lanczos must agree on a
#      fixed-seed d=40 symmetric matrix (DESIGN.md §3.10); catches any
#      drift between the production QL/Lanczos kernels and the Jacobi
#      oracle before the proptest suite would.
#   7. decomposition-cache parity smoke — enabling --decomp-cache under
#      each eviction policy must leave the simulate output byte-identical
#      to the cache-off run (DESIGN.md §3.11's bit-identity contract).
#   8. trace determinism + diff smoke — same-seed runs must emit
#      byte-identical --trace-out files (`automon trace diff` exits 0);
#      a perturbed run must be pinpointed with its first divergent seq
#      and span path (DESIGN.md §3.12).
#   9. ledger conservation + summarize smoke — the per-cause ledger in
#      the --json output must sum exactly to messages/payload_bytes,
#      and `automon trace summarize` must render the bytes/update-by-
#      cause table, for inner-product and variance.
#  10. crash-coordinator determinism smoke — killing the coordinator
#      mid-run and rebuilding it from the durable store must stay
#      byte-deterministic: same seed + --crash-coordinator gives an
#      identical --json report and a byte-identical trace (`automon
#      trace diff` exits 0), with the recovery resync charged to the
#      `recovery` ledger cause (docs/DURABILITY.md).
#  11. fleet determinism smoke — the two-tier sharded run (1k streams,
#      8 shards, a node crash/restart and a leaf crash) must be
#      byte-deterministic: two identical invocations give the same
#      --json report and byte-identical traces (`automon trace diff`
#      exits 0), the combined two-tier ledger must conserve the fleet's
#      message/byte totals, and the root tier must carry fewer messages
#      than the leaf tier (DESIGN.md §3.14).
#  12. net runtime smoke — (a) reactor determinism: the sim-poller
#      backend under frame-level chaos must give a byte-identical
#      --trace-out and identical stats for the same seeds; (b) backend
#      parity: the threaded and reactor socket backends must produce
#      identical protocol stats for the same workload seed — the
#      transport must not change what the monitor computes
#      (DESIGN.md §3.15).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> chaos determinism smoke"
CHAOS_ARGS=(simulate --function inner-product --dim 4 --nodes 4
    --rounds 90 --epsilon 0.3
    --chaos-seed 7 --drop-rate 0.1 --crash-node 2:30:60 --partition 1:10:20)
run_a=$(cargo run --release -q -p automon-cli -- "${CHAOS_ARGS[@]}")
run_b=$(cargo run --release -q -p automon-cli -- "${CHAOS_ARGS[@]}")
if [[ "$run_a" != "$run_b" ]]; then
    echo "FAIL: identical --chaos-seed produced different reports" >&2
    diff <(printf '%s\n' "$run_a") <(printf '%s\n' "$run_b") >&2 || true
    exit 1
fi
if ! grep -q "quiesced" <<<"$run_a"; then
    echo "FAIL: chaos run did not reach quiescence" >&2
    printf '%s\n' "$run_a" >&2
    exit 1
fi
echo "    deterministic, quiesced"

echo "==> zero-overhead bench smoke (tolerance ${BENCH_SMOKE_TOLERANCE:-0.10})"
# Three repetitions, per-key minimum: the parallel eigen search makes a
# single median noisy, and scheduler noise only ever inflates timings.
BENCH_OUT=$(for _ in 1 2 3; do
    cargo bench -q -p automon-bench --bench obs_overhead 2>&1 | grep '^BENCHLINE' || true
done)
python3 - <<PYEOF
import os, sys

tol = float(os.environ.get("BENCH_SMOKE_TOLERANCE", "0.10"))
medians = {}
for line in """${BENCH_OUT}""".splitlines():
    parts = line.split()
    if len(parts) == 4 and parts[0] == "BENCHLINE" and parts[2] == "median_ns":
        key, v = parts[1], float(parts[3])
        medians[key] = min(medians.get(key, v), v)

failures = []
for d in (10, 40):
    bare = medians.get(f"obs_overhead/decompose_bare/{d}")
    off = medians.get(f"obs_overhead/decompose_disabled_tel/{d}")
    if bare is None or off is None:
        failures.append(f"d={d}: missing BENCHLINE output")
        continue
    ratio = off / bare
    print(f"    d={d}: bare {bare:.0f} ns, disabled telemetry {off:.0f} ns "
          f"(ratio {ratio:.3f})")
    if ratio > 1.0 + tol:
        failures.append(
            f"d={d}: disabled telemetry {off:.0f} ns exceeds bare "
            f"{bare:.0f} ns by more than {tol:.0%}")
if failures:
    print("FAIL: disabled telemetry is not zero-overhead", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
PYEOF
echo "    disabled telemetry within noise of bare decompose"

echo "==> spectral parity smoke (d=40, seed 1)"
SMOKE_OUT=$(cargo run --release -q -p automon-cli -- spectral-smoke --dim 40 --seed 1)
if ! grep -q "PASS" <<<"$SMOKE_OUT"; then
    echo "FAIL: spectral backends disagree" >&2
    printf '%s\n' "$SMOKE_OUT" >&2
    exit 1
fi
echo "    $SMOKE_OUT"

echo "==> decomposition-cache parity smoke"
CACHE_ARGS=(simulate --function rozenbrock --nodes 4 --rounds 90
    --epsilon 0.2 --json)
base=$(cargo run --release -q -p automon-cli -- "${CACHE_ARGS[@]}")
for policy in lru-k slru arc; do
    cached=$(cargo run --release -q -p automon-cli -- "${CACHE_ARGS[@]}" \
        --decomp-cache "$policy")
    if [[ "$cached" != "$base" ]]; then
        echo "FAIL: --decomp-cache $policy changed the monitoring output" >&2
        diff <(printf '%s\n' "$base") <(printf '%s\n' "$cached") >&2 || true
        exit 1
    fi
    echo "    $policy: bit-identical to cache-off"
done

echo "==> trace determinism + diff smoke"
TDIR=$(mktemp -d)
trap 'rm -rf "$TDIR"' EXIT
TRACE_ARGS=(simulate --function inner-product --dim 4 --nodes 3
    --rounds 80 --epsilon 0.2)
cargo run --release -q -p automon-cli -- "${TRACE_ARGS[@]}" \
    --trace-out "$TDIR/a.jsonl" >/dev/null
cargo run --release -q -p automon-cli -- "${TRACE_ARGS[@]}" \
    --trace-out "$TDIR/b.jsonl" >/dev/null
cargo run --release -q -p automon-cli -- trace diff \
    --left "$TDIR/a.jsonl" --right "$TDIR/b.jsonl" >/dev/null
cargo run --release -q -p automon-cli -- "${TRACE_ARGS[@]}" --seed 2 \
    --trace-out "$TDIR/c.jsonl" >/dev/null
if DIFF_OUT=$(cargo run --release -q -p automon-cli -- trace diff \
    --left "$TDIR/a.jsonl" --right "$TDIR/c.jsonl" 2>&1); then
    echo "FAIL: trace diff missed a perturbed run" >&2
    exit 1
fi
if ! grep -q "diverge at seq" <<<"$DIFF_OUT"; then
    echo "FAIL: divergence report lacks the first divergent seq" >&2
    printf '%s\n' "$DIFF_OUT" >&2
    exit 1
fi
if ! grep -q "span path:" <<<"$DIFF_OUT"; then
    echo "FAIL: divergence report lacks the span path" >&2
    printf '%s\n' "$DIFF_OUT" >&2
    exit 1
fi
echo "    same seed byte-identical; perturbed run pinpointed with span path"

echo "==> ledger conservation + summarize smoke"
for fn in inner-product variance; do
    JSON_OUT=$(cargo run --release -q -p automon-cli -- simulate \
        --function "$fn" --nodes 4 --rounds 80 --epsilon 0.2 --json \
        --trace-out "$TDIR/$fn.jsonl")
    python3 - <<PYEOF
import json, sys

stats = json.loads("""${JSON_OUT}""")
rows = stats.get("ledger") or []
if not rows:
    print("FAIL: ${fn}: --json output has no ledger", file=sys.stderr)
    sys.exit(1)
msgs = sum(r["msgs"] for r in rows)
nbytes = sum(r["bytes"] for r in rows)
if msgs != stats["messages"] or nbytes != stats["payload_bytes"]:
    print(f"FAIL: ${fn}: ledger ({msgs} msgs, {nbytes} B) != counters "
          f"({stats['messages']} msgs, {stats['payload_bytes']} B)",
          file=sys.stderr)
    sys.exit(1)
print(f"    ${fn}: ledger conserves {msgs} msgs / {nbytes} bytes "
      f"across {len(rows)} causes")
PYEOF
    SUMMARY=$(cargo run --release -q -p automon-cli -- trace summarize \
        --input "$TDIR/$fn.jsonl")
    if ! grep -q "comm by cause (bytes/update" <<<"$SUMMARY"; then
        echo "FAIL: $fn: summarize lacks the bytes/update-by-cause table" >&2
        printf '%s\n' "$SUMMARY" >&2
        exit 1
    fi
    if ! grep -q "registration" <<<"$SUMMARY" || ! grep -q "full_sync" <<<"$SUMMARY"; then
        echo "FAIL: $fn: summarize table is missing protocol causes" >&2
        printf '%s\n' "$SUMMARY" >&2
        exit 1
    fi
    echo "    $fn: bytes/update-by-cause table rendered"
done

echo "==> crash-coordinator determinism smoke"
CRASH_ARGS=(simulate --function inner-product --dim 4 --nodes 4
    --rounds 90 --epsilon 0.3
    --chaos-seed 7 --drop-rate 0.1 --crash-coordinator 40 --json)
crash_a=$(cargo run --release -q -p automon-cli -- "${CRASH_ARGS[@]}" \
    --trace-out "$TDIR/crash-a.jsonl")
crash_b=$(cargo run --release -q -p automon-cli -- "${CRASH_ARGS[@]}" \
    --trace-out "$TDIR/crash-b.jsonl")
if [[ "$crash_a" != "$crash_b" ]]; then
    echo "FAIL: identical --crash-coordinator runs produced different reports" >&2
    diff <(printf '%s\n' "$crash_a") <(printf '%s\n' "$crash_b") >&2 || true
    exit 1
fi
cargo run --release -q -p automon-cli -- trace diff \
    --left "$TDIR/crash-a.jsonl" --right "$TDIR/crash-b.jsonl" >/dev/null
python3 - <<PYEOF
import json, sys

stats = json.loads("""${crash_a}""")
if stats.get("coordinator_recoveries") != 1:
    print(f"FAIL: expected 1 coordinator recovery, report says "
          f"{stats.get('coordinator_recoveries')!r}", file=sys.stderr)
    sys.exit(1)
rows = [r for r in (stats.get("ledger") or []) if r["cause"] == "recovery"]
if not rows or rows[0]["msgs"] <= 0:
    print("FAIL: ledger has no recovery cause with msgs > 0", file=sys.stderr)
    sys.exit(1)
print(f"    recovery resync charged: {rows[0]['msgs']} msgs / "
      f"{rows[0]['bytes']} bytes")
PYEOF
echo "    crash/replay byte-deterministic; trace diff clean"

echo "==> fleet determinism smoke (1k streams, 8 shards)"
FLEET_ARGS=(simulate --function inner-product --dim 4 --nodes 1000
    --rounds 60 --epsilon 0.3 --fleet --shards 8
    --crash-node 3:10:25 --crash-leaf 5:30 --json)
fleet_a=$(cargo run --release -q -p automon-cli -- "${FLEET_ARGS[@]}" \
    --trace-out "$TDIR/fleet-a.jsonl")
fleet_b=$(cargo run --release -q -p automon-cli -- "${FLEET_ARGS[@]}" \
    --trace-out "$TDIR/fleet-b.jsonl")
if [[ "$fleet_a" != "$fleet_b" ]]; then
    echo "FAIL: identical fleet runs produced different reports" >&2
    diff <(printf '%s\n' "$fleet_a") <(printf '%s\n' "$fleet_b") >&2 || true
    exit 1
fi
cargo run --release -q -p automon-cli -- trace diff \
    --left "$TDIR/fleet-a.jsonl" --right "$TDIR/fleet-b.jsonl" >/dev/null
python3 - <<PYEOF
import json, sys

report = json.loads("""${fleet_a}""")
stats = report["stats"]
rows = stats.get("ledger") or []
if not rows:
    print("FAIL: fleet --json output has no combined ledger", file=sys.stderr)
    sys.exit(1)
msgs = sum(r["msgs"] for r in rows)
nbytes = sum(r["bytes"] for r in rows)
total_bytes = report["root_payload_bytes"] + report["leaf_payload_bytes"]
if msgs != stats["messages"] or nbytes != stats["payload_bytes"]:
    print(f"FAIL: combined ledger ({msgs} msgs, {nbytes} B) != totals "
          f"({stats['messages']} msgs, {stats['payload_bytes']} B)",
          file=sys.stderr)
    sys.exit(1)
if report["root_messages"] + report["leaf_messages"] != stats["messages"]:
    print("FAIL: per-tier message split does not sum to the total",
          file=sys.stderr)
    sys.exit(1)
if nbytes != total_bytes:
    print("FAIL: per-tier byte split does not sum to the ledger total",
          file=sys.stderr)
    sys.exit(1)
if report["root_messages"] >= report["leaf_messages"]:
    print(f"FAIL: root tier ({report['root_messages']} msgs) should be "
          f"quieter than the leaf tier ({report['leaf_messages']} msgs)",
          file=sys.stderr)
    sys.exit(1)
if report["leaf_crashes"] != 1 or report["rebalances"] != 1:
    print("FAIL: leaf crash was not rebalanced exactly once", file=sys.stderr)
    sys.exit(1)
print(f"    two-tier ledger conserves {msgs} msgs / {nbytes} bytes; "
      f"root {report['root_messages']} vs leaf {report['leaf_messages']} msgs")
PYEOF
echo "    fleet run byte-deterministic under faults; trace diff clean"

echo "==> net runtime smoke (sim determinism + threaded/reactor parity)"
NET_SIM_ARGS=(net-smoke --net-backend sim --nodes 4 --rounds 60
    --dim 2 --seed 5 --epsilon 0.4
    --chaos-seed 9 --drop-rate 0.1 --duplicate-rate 0.05 --delay-rate 0.05)
net_a=$(cargo run --release -q -p automon-cli -- "${NET_SIM_ARGS[@]}" \
    --trace-out "$TDIR/net-a.jsonl")
net_b=$(cargo run --release -q -p automon-cli -- "${NET_SIM_ARGS[@]}" \
    --trace-out "$TDIR/net-b.jsonl")
if [[ "$net_a" != "$net_b" ]]; then
    echo "FAIL: identical net-smoke sim runs produced different reports" >&2
    diff <(printf '%s\n' "$net_a") <(printf '%s\n' "$net_b") >&2 || true
    exit 1
fi
if ! cmp -s "$TDIR/net-a.jsonl" "$TDIR/net-b.jsonl"; then
    echo "FAIL: sim-poller traces differ for the same seeds" >&2
    diff "$TDIR/net-a.jsonl" "$TDIR/net-b.jsonl" >&2 || true
    exit 1
fi
echo "    sim backend byte-deterministic under frame-level chaos"

NET_PAR_ARGS=(net-smoke --nodes 4 --rounds 40 --dim 2 --seed 3 --epsilon 0.4)
net_thr=$(cargo run --release -q -p automon-cli -- "${NET_PAR_ARGS[@]}" \
    --net-backend threaded)
net_rea=$(cargo run --release -q -p automon-cli -- "${NET_PAR_ARGS[@]}" \
    --net-backend reactor)
python3 - <<PYEOF
import json, sys

thr = json.loads("""${net_thr}""")["stats"]
rea = json.loads("""${net_rea}""")["stats"]
if thr != rea:
    print("FAIL: threaded and reactor backends disagree on protocol stats",
          file=sys.stderr)
    for k in sorted(set(thr) | set(rea)):
        if thr.get(k) != rea.get(k):
            print(f"  {k}: threaded={thr.get(k)!r} reactor={rea.get(k)!r}",
                  file=sys.stderr)
    sys.exit(1)
print(f"    threaded == reactor: {thr['reports']} reports, "
      f"{thr['full_syncs']} full syncs, {thr['lazy_syncs']} lazy syncs")
PYEOF
echo "    socket backends protocol-identical for the same seed"

echo "==> CI green"
