#!/usr/bin/env bash
# CI gate: everything a PR must pass, in the order a failure is
# cheapest to diagnose. Run from the repository root.
#
#   scripts/ci.sh
#
# Steps:
#   1. release build of the whole workspace
#   2. full test suite
#   3. clippy, warnings denied
#   4. chaos determinism smoke — the same --chaos-seed must produce a
#      byte-identical report (DESIGN.md §3.8); catches any accidental
#      nondeterminism (HashMap iteration, extra RNG draws, time).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> chaos determinism smoke"
CHAOS_ARGS=(simulate --function inner-product --dim 4 --nodes 4
    --rounds 90 --epsilon 0.3
    --chaos-seed 7 --drop-rate 0.1 --crash-node 2:30:60 --partition 1:10:20)
run_a=$(cargo run --release -q -p automon-cli -- "${CHAOS_ARGS[@]}")
run_b=$(cargo run --release -q -p automon-cli -- "${CHAOS_ARGS[@]}")
if [[ "$run_a" != "$run_b" ]]; then
    echo "FAIL: identical --chaos-seed produced different reports" >&2
    diff <(printf '%s\n' "$run_a") <(printf '%s\n' "$run_b") >&2 || true
    exit 1
fi
if ! grep -q "quiesced" <<<"$run_a"; then
    echo "FAIL: chaos run did not reach quiescence" >&2
    printf '%s\n' "$run_a" >&2
    exit 1
fi
echo "    deterministic, quiesced"

echo "==> CI green"
